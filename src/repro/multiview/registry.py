"""ViewRegistry: N materialized views over one storage, one update stream.

The registry generalizes the single-view V-P-A facade (Fig 1.5) to many
simultaneously maintained views:

* **register / unregister** views by name; each carries its own plan,
  SAPT, extent, :class:`~repro.multiview.policies.MaintenancePolicy` and
  :class:`~repro.multiview.cost.CostModel`;
* **shared Validate** — every :class:`~repro.updates.primitives
  .UpdateRequest` entering :meth:`apply_updates` is classified *once* by
  the :class:`~repro.multiview.router.SharedValidationRouter` and
  dispatched only to the views it can affect; updates irrelevant to every
  view hit storage exactly once and propagate nowhere;
* **shared batching** — the stream is grouped into maximal same-document
  same-kind runs by the same :class:`~repro.updates.batch.RunBatcher`
  the single-view driver uses; each relevant view propagates its own
  subset of a run's trees (relevance is ancestor-monotone, so the global
  nested-root dedup never hides a root from a view that needs it);
* **policies** — immediate views propagate at every batch boundary;
  deferred/threshold views queue batches and flush lazily.  Delete
  batches are barriers: the doomed subtrees leave storage only after
  every relevant view (whatever its policy) has propagated them;
* **cost-based fallback** — at flush time each view's cost model compares
  the estimated propagation cost of its pending trees against observed
  recomputation cost and recomputes the extent wholesale when
  incremental maintenance would lose (Section 9.1's enable-cost
  trade-off, applied per batch).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Union

from ..engine import Engine
from ..engine.opstate import OperatorStateStore
from ..storage import StorageManager
from ..translate import translate_query
from ..updates.batch import RunBatcher
from ..updates.primitives import UpdateRequest, UpdateTree
from ..xat import DELETE, INSERT, MODIFY, Profiler, XatOperator
from .cost import CostModel
from .pipeline import (MaintenanceReport, ViewPipeline, apply_insert,
                       decompose_modify, decomposition_anchor, direct_text)
from .policies import IMMEDIATE_KIND, THRESHOLD_KIND, MaintenancePolicy
from .router import SharedValidationRouter


@dataclass
class RoutedTree(UpdateTree):
    """An update tree annotated with the names of the views it affects."""

    views: frozenset = frozenset()


@dataclass(frozen=True)
class RefreshEvent:
    """One view's extent just changed under maintenance.

    ``reason`` is ``"propagate"`` (pending delta batches were propagated
    into the extent) or ``"recompute"`` (the cost model or a min/max
    eviction forced full recomputation).  ``trees`` counts the update
    trees the refresh consumed.
    """

    view: str
    reason: str
    trees: int = 0


@dataclass
class ViewStats:
    """Maintenance activity of one registered view."""

    flushes: int = 0
    recomputes: int = 0
    propagated_trees: int = 0
    routed_trees: int = 0


@dataclass
class MultiViewReport:
    """What one :meth:`ViewRegistry.apply_updates` call did."""

    updates: int = 0                 # requests processed (incl. replacements)
    classifications: int = 0         # router classifications (exactly once
                                     # per processed request)
    routed: int = 0                  # requests relevant to >= 1 view
    irrelevant_everywhere: int = 0   # requests that only touched storage
    decomposed: int = 0              # insufficient modifies decomposed
    storage_ops: int = 0             # storage mutations performed
    validate_seconds: float = 0.0    # shared routing time (not per view)
    views: dict = field(default_factory=dict)  # name -> cumulative report


class RegisteredView:
    """One view under registry maintenance (a handle, also used
    internally)."""

    def __init__(self, name: str, pipeline: ViewPipeline,
                 policy: MaintenancePolicy, cost: CostModel):
        self.name = name
        self.pipeline = pipeline
        self.policy = policy
        self.cost = cost
        self.pending: list[list[RoutedTree]] = []
        self.report = MaintenanceReport()
        self.stats = ViewStats()

    def pending_trees(self) -> int:
        return sum(len(batch) for batch in self.pending)

    def to_xml(self) -> str:
        return self.pipeline.to_xml()


class ViewRegistry:
    """Manages N materialized views over one :class:`StorageManager`.

    ``operator_state`` controls the persistent per-operator state of the
    Propagate phase: by default the registry owns one shared
    :class:`~repro.engine.opstate.OperatorStateStore`, handed to every
    registered view's pipeline so structurally-equal subplans across
    views (same signature) resolve to the *same* cached side tables and
    hash indexes — the cross-view analogue of the shared validation
    router.  Pass ``operator_state=False`` to disable (every maintenance
    run then re-derives its side tables from storage).
    """

    def __init__(self, storage: StorageManager,
                 operator_state: bool = True,
                 modify_decomposition: bool = False):
        self.storage = storage
        self.engine = Engine(storage)
        self.router = SharedValidationRouter()
        self.modify_decomposition = modify_decomposition
        self.state_store = (OperatorStateStore(storage)
                            if operator_state else None)
        self._views: dict[str, RegisteredView] = {}
        self._storage_ops = 0
        self._refresh_listeners: list = []
        storage.add_listener(self._count_storage_op)

    def _count_storage_op(self, op: str, key) -> None:
        self._storage_ops += 1

    def close(self) -> None:
        """Detach from the storage manager (idempotent).  A registry holds
        a mutation listener on its storage; call this when discarding a
        registry whose StorageManager outlives it.  Refresh listeners are
        dropped with it."""
        self.storage.remove_listener(self._count_storage_op)
        if self.state_store is not None:
            self.state_store.close()
        self._refresh_listeners.clear()

    def __enter__(self) -> "ViewRegistry":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # -- refresh events ----------------------------------------------------------------

    def add_refresh_listener(self, listener) -> None:
        """Subscribe ``listener(event: RefreshEvent)`` to view refreshes —
        fired whenever maintenance changes a view's extent (delta
        propagation or full recomputation), whatever triggered the flush
        (stream dispatch, a read of a deferred view, or an explicit
        :meth:`flush`)."""
        self._refresh_listeners.append(listener)

    def remove_refresh_listener(self, listener) -> None:
        """Unsubscribe (no-op when absent — discard semantics)."""
        try:
            self._refresh_listeners.remove(listener)
        except ValueError:
            pass

    def _notify_refresh(self, name: str, reason: str, trees: int) -> None:
        if not self._refresh_listeners:
            return
        event = RefreshEvent(name, reason, trees)
        for listener in list(self._refresh_listeners):
            listener(event)

    # -- registration ------------------------------------------------------------------

    def register(self, name: str, query: Union[str, XatOperator],
                 policy: Union[MaintenancePolicy, str, int] = "immediate",
                 cost_model: Optional[CostModel] = None,
                 materialize: bool = True) -> RegisteredView:
        """Register (and by default materialize) a view under ``name``."""
        if name in self._views:
            raise ValueError(f"view {name!r} already registered")
        plan = (translate_query(query) if isinstance(query, str)
                else query)
        view = RegisteredView(name,
                              ViewPipeline(self.engine, plan,
                                           state_store=self.state_store),
                              MaintenancePolicy.parse(policy),
                              cost_model if cost_model is not None
                              else CostModel())
        self._views[name] = view
        self.router.subscribe(name, view.pipeline.sapt)
        if materialize:
            self.materialize(name)
        return view

    def unregister(self, name: str) -> None:
        """Drop a view; its queued deltas are discarded with it."""
        view = self._views.pop(name)
        self.router.unsubscribe(name)
        view.pending.clear()

    def names(self) -> list[str]:
        return list(self._views)

    def view(self, name: str) -> RegisteredView:
        return self._views[name]

    def __contains__(self, name: str) -> bool:
        return name in self._views

    def __len__(self) -> int:
        return len(self._views)

    # -- materialization and reads -----------------------------------------------------

    def materialize(self, name: Optional[str] = None,
                    profiler: Optional[Profiler] = None) -> None:
        """(Re)materialize one view, or every registered view.

        The observed full-computation time seeds the view's cost model —
        the recompute side of every later flush decision."""
        views = ([self._views[name]] if name is not None
                 else list(self._views.values()))
        for view in views:
            started = time.perf_counter()
            view.pipeline.materialize(profiler=profiler)
            view.cost.observe_recompute(time.perf_counter() - started)

    def query(self, name: str) -> str:
        """Read a view's XML, first flushing its pending deltas (the lazy
        flush point of the deferred policy)."""
        self.flush(name)
        return self._views[name].pipeline.to_xml()

    def to_xml(self, name: str) -> str:
        """The view's current extent *without* flushing (deferred views
        may be stale by design)."""
        return self._views[name].pipeline.to_xml()

    def recompute_xml(self, name: str) -> str:
        """Full recomputation oracle for one view (extent untouched)."""
        return self._views[name].pipeline.recompute_xml()

    # -- the shared update entry point -------------------------------------------------

    def apply_updates(self, updates: list[UpdateRequest],
                      profiler: Optional[Profiler] = None
                      ) -> MultiViewReport:
        """Route, batch and propagate one heterogeneous update sequence
        across every registered view."""
        report = MultiViewReport()
        stats_before = (self.router.stats.classifications,
                        self.router.stats.routed,
                        self.router.stats.irrelevant_everywhere)
        ops_before = self._storage_ops
        self._profiler = profiler
        try:
            self._apply_queue(list(updates), RunBatcher(), report)
        finally:
            self._profiler = None

        report.classifications = (self.router.stats.classifications
                                  - stats_before[0])
        report.routed = self.router.stats.routed - stats_before[1]
        report.irrelevant_everywhere = (
            self.router.stats.irrelevant_everywhere - stats_before[2])
        report.storage_ops = self._storage_ops - ops_before
        report.views = {name: view.report
                        for name, view in self._views.items()}
        return report

    def _apply_queue(self, queue: list[UpdateRequest], batcher: RunBatcher,
                     report: MultiViewReport) -> None:
        """Validate, route and dispatch the queue (mutates it in place
        when a modify decomposes); the caller owns profiler cleanup."""
        storage = self.storage
        index = 0
        while index < len(queue):
            request = queue[index]
            index += 1
            report.updates += 1
            # A kind/document boundary closes the pending run before this
            # request's storage change applies (see RunBatcher.crosses).
            if batcher.crosses(request.document, request.kind):
                closed = batcher.close()
                if closed is not None:
                    self._dispatch(closed)
            started = time.perf_counter()
            if request.kind == INSERT:
                key = apply_insert(storage, request)
                result = self.router.route(storage, request.document, key)
                tree = RoutedTree(request.document, key, INSERT,
                                  views=result.views)
            elif request.kind == DELETE:
                result = self.router.route(storage, request.document,
                                           request.target)
                if not result.views:
                    storage.delete_subtree(request.target)
                    report.validate_seconds += (time.perf_counter()
                                                - started)
                    continue
                tree = RoutedTree(request.document, request.target, DELETE,
                                  views=result.views)
            else:  # MODIFY
                result = self.router.route(storage, request.document,
                                           request.target)
                if not result.views:
                    storage.replace_text(request.target, request.new_value)
                    report.validate_seconds += (time.perf_counter()
                                                - started)
                    continue
                hitters = self.router.predicate_hitters(
                    request.document, result.tags, result.views)
                if hitters and self.modify_decomposition:
                    # Legacy escape hatch: one view's insufficiency
                    # decomposes the modify for everyone — delete+insert
                    # of the outermost binding fragment is a
                    # storage-equivalent rewrite every view handles
                    # through re-routing.
                    anchor = self._outermost_anchor(hitters, request)
                    report.decomposed += 1
                    replacements = decompose_modify(storage, request,
                                                    anchor)
                    report.validate_seconds += (time.perf_counter()
                                                - started)
                    queue[index:index] = replacements
                    continue
                if hitters:
                    # First-class modify: the pair re-routes derivations
                    # in-flight for the views that need it; views that
                    # read the value as content get an equivalent
                    # retract/assert re-derivation.
                    old_value = direct_text(storage, request.target)
                    storage.replace_text(request.target, request.new_value)
                    tree = RoutedTree(request.document, request.target,
                                      MODIFY, old_value=old_value,
                                      new_value=request.new_value,
                                      views=result.views)
                else:
                    storage.replace_text(request.target, request.new_value)
                    tree = RoutedTree(request.document, request.target,
                                      MODIFY, views=result.views)
            report.validate_seconds += time.perf_counter() - started
            if request.kind == INSERT and not result.views:
                continue  # fragment stored; nothing propagates
            closed, accepted = batcher.push(tree)
            assert closed is None  # the boundary flush above closed it
            if accepted:
                for name in tree.views:
                    view = self._views.get(name)
                    if view is not None:
                        view.report.accepted += 1
                        view.stats.routed_trees += 1
        closed = batcher.close()
        if closed is not None:
            self._dispatch(closed)

    def _outermost_anchor(self, hitters, request: UpdateRequest):
        """The outermost binding anchor across the views that need the
        modify decomposed — a fragment enclosing each view's own anchor,
        hence sufficient for all of them."""
        anchors = [decomposition_anchor(self.storage,
                                        self._views[name].pipeline.sapt,
                                        request)
                   for name in sorted(hitters)]
        return min(anchors, key=lambda key: key.depth)

    # -- dispatch and flushing ---------------------------------------------------------

    def _dispatch(self, run: list[RoutedTree]) -> None:
        """Hand one closed run to every view it affects, honouring
        policies — except that delete runs are barriers (see module
        docstring)."""
        affected = [view for name, view in self._views.items()
                    if any(name in tree.views for tree in run)]
        if run[0].kind == DELETE:
            recompute_after = []
            for view in affected:
                self._enqueue(view, run)
                deferred_trees = self._flush_view(view, defer_recompute=True)
                if deferred_trees is not None:
                    recompute_after.append((view, deferred_trees))
            for tree in run:
                self.storage.delete_subtree(tree.root)
            for view, trees in recompute_after:
                self._recompute(view, trees=trees)
            return
        for view in affected:
            self._enqueue(view, run)
            policy = view.policy
            if policy.kind == IMMEDIATE_KIND or (
                    policy.kind == THRESHOLD_KIND
                    and view.pending_trees() >= policy.threshold):
                self._flush_view(view)

    def _enqueue(self, view: RegisteredView, run: list[RoutedTree]) -> None:
        if not view.pipeline.materialized:
            raise RuntimeError(
                f"materialize view {view.name!r} before updating it")
        subset = [tree for tree in run if view.name in tree.views]
        kept: list[RoutedTree] = []
        for tree in subset:
            pending = [t for batch in view.pending for t in batch]
            if tree.kind != DELETE and any(
                    t.kind == INSERT and (t.root == tree.root
                                          or t.root.is_ancestor_of(tree.root))
                    for t in pending):
                # A pending insert reads final storage when it flushes, so
                # it already covers this nested insert/modify; propagating
                # both would double-count.
                continue
            if any(t.root == tree.root or t.root.is_ancestor_of(tree.root)
                   or tree.root.is_ancestor_of(t.root) for t in pending):
                # Conservative: overlapping roots across deferred batches
                # can double-propagate — drain the queue first.
                self._flush_view(view)
            kept.append(tree)
        if kept:
            view.pending.append(kept)

    def flush(self, name: Optional[str] = None) -> None:
        """Propagate pending deltas of one view (or of all views) now."""
        views = ([self._views[name]] if name is not None
                 else list(self._views.values()))
        for view in views:
            self._flush_view(view)

    def _flush_view(self, view: RegisteredView,
                    defer_recompute: bool = False) -> Optional[int]:
        """Flush one view's queue; returns the pending tree count when
        the flush decided on recomputation but must wait for pending
        storage deletes (the caller recomputes after applying them,
        passing the count through to the refresh event), else None."""
        if not view.pending:
            return None
        view.stats.flushes += 1
        trees = view.pending_trees()
        if view.cost.should_recompute(trees):
            view.pending.clear()
            if defer_recompute:
                return trees
            self._recompute(view, trees=trees)
            return None
        refreshes_before = len(view.report.fusion.aggregate_refreshes)
        started = time.perf_counter()
        for batch in view.pending:
            view.pipeline.propagate_run(batch, view.report,
                                        profiler=self._profiler)
        view.cost.observe_propagation(trees,
                                      time.perf_counter() - started)
        view.stats.propagated_trees += trees
        view.pending.clear()
        if len(view.report.fusion.aggregate_refreshes) > refreshes_before:
            # min/max eviction: fall back to recomputation (Section 7.6).
            if defer_recompute:
                return trees
            self._recompute(view, trees=trees)
            return None
        self._notify_refresh(view.name, "propagate", trees)
        return None

    def _recompute(self, view: RegisteredView, trees: int = 0) -> None:
        started = time.perf_counter()
        view.pipeline.recompute()
        view.cost.observe_recompute(time.perf_counter() - started)
        view.report.recomputed = True
        view.stats.recomputes += 1
        self._notify_refresh(view.name, "recompute", trees)

    _profiler: Optional[Profiler] = None
