"""Cost-based choice between incremental propagation and recomputation.

The paper's evaluation (Section 9.1, Fig 9.1-9.6 — reproduced by the
``benchmarks/bench_fig9_*`` modules) shows incremental maintenance wins
for small update batches but loses to full recomputation once a batch
touches a large enough fraction of the sources.  :class:`CostModel`
captures that trade-off per view with two online-calibrated quantities:

* ``recompute_seconds`` — the observed cost of one full materialization,
  seeded by the initial :meth:`ViewRegistry.materialize` timing and
  refreshed (EWMA) on every later recomputation;
* ``per_tree_seconds`` — the observed propagation cost per update tree,
  refreshed (EWMA) from every incremental flush's
  :class:`~repro.multiview.pipeline.MaintenanceReport` timings.

A flush of ``n`` pending trees falls back to recomputation when
``n * per_tree_seconds > bias * recompute_seconds``.  Until both sides
have been observed the model always chooses incremental — the paper's
default.  ``bias`` (> 1 favours incremental) absorbs the estimation
noise of small timings.
"""

from __future__ import annotations

from typing import Optional


class CostModel:
    """Per-view estimator for incremental-vs-recompute flush decisions."""

    def __init__(self, recompute_seconds: Optional[float] = None,
                 per_tree_seconds: Optional[float] = None,
                 alpha: float = 0.5, bias: float = 1.0):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if bias <= 0.0:
            raise ValueError("bias must be positive")
        self.recompute_seconds = recompute_seconds
        self.per_tree_seconds = per_tree_seconds
        self.alpha = alpha
        self.bias = bias
        self.recompute_observations = 0
        self.propagation_observations = 0

    def _blend(self, old: Optional[float], new: float) -> float:
        if old is None:
            return new
        return self.alpha * new + (1.0 - self.alpha) * old

    def observe_recompute(self, seconds: float) -> None:
        self.recompute_seconds = self._blend(self.recompute_seconds,
                                             seconds)
        self.recompute_observations += 1

    def observe_propagation(self, trees: int, seconds: float) -> None:
        if trees <= 0:
            return
        self.per_tree_seconds = self._blend(self.per_tree_seconds,
                                            seconds / trees)
        self.propagation_observations += 1

    def estimate_propagation(self, trees: int) -> Optional[float]:
        if self.per_tree_seconds is None:
            return None
        return trees * self.per_tree_seconds

    def should_recompute(self, pending_trees: int) -> bool:
        """Would propagating ``pending_trees`` lose to recomputing?"""
        estimate = self.estimate_propagation(pending_trees)
        if estimate is None or self.recompute_seconds is None:
            return False  # uncalibrated: stay incremental
        return estimate > self.bias * self.recompute_seconds

    def __repr__(self) -> str:
        return (f"CostModel(recompute={self.recompute_seconds!r}, "
                f"per_tree={self.per_tree_seconds!r}, bias={self.bias})")
