"""Multi-view maintenance: N materialized XQuery views over one storage.

The subsystem generalizes the single-view V-P-A facade to a registry of
views maintained from a single update stream:

* :mod:`~repro.multiview.pipeline` — the shared V-P-A machinery (also
  backing :class:`repro.MaterializedXQueryView`);
* :mod:`~repro.multiview.router` — shared validation: one interned path
  index over all views, one classification per update;
* :mod:`~repro.multiview.policies` — per-view immediate / deferred /
  threshold flush policies;
* :mod:`~repro.multiview.cost` — cost-based incremental-vs-recompute
  flush decisions;
* :mod:`~repro.multiview.registry` — the :class:`ViewRegistry` tying it
  together.
"""

from .cost import CostModel
from .pipeline import MaintenanceReport, ViewPipeline, run_maintenance
from .policies import DEFERRED, IMMEDIATE, MaintenancePolicy, threshold
from .registry import (MultiViewReport, RefreshEvent, RegisteredView,
                       RoutedTree, ViewRegistry, ViewStats)
from .router import RouterStats, RouteResult, SharedValidationRouter

__all__ = [
    "CostModel",
    "DEFERRED",
    "IMMEDIATE",
    "MaintenancePolicy",
    "MaintenanceReport",
    "MultiViewReport",
    "RefreshEvent",
    "RegisteredView",
    "RoutedTree",
    "RouteResult",
    "RouterStats",
    "SharedValidationRouter",
    "ViewPipeline",
    "ViewRegistry",
    "ViewStats",
    "run_maintenance",
    "threshold",
]
