"""Sibling-key generation leaving gaps for future inserts.

Initial key assignment (Fig 3.1 of the paper) leaves gaps between sibling
keys — we use every second letter ``b, d, f, … x`` and roll over into a
``z``-prefixed block, so the sequence is unbounded, strictly increasing and
never produces an atom ending in ``a``:

    b < d < … < x < zb < zd < … < zx < zzb < …
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from .key import FlexKey, atom_after, atom_before, atom_between

#: Letters used for initial assignment (gaps of one letter between each).
_GAPPED = "bdfhjlnprtvx"


def sibling_atom(index: int) -> str:
    """The atom assigned to the ``index``-th sibling (0-based) at load time."""
    if index < 0:
        raise ValueError("sibling index must be >= 0")
    prefix_blocks, offset = divmod(index, len(_GAPPED))
    return "z" * prefix_blocks + _GAPPED[offset]


def sibling_atoms(count: int) -> Iterator[str]:
    """The first ``count`` initial sibling atoms, in order."""
    return (sibling_atom(i) for i in range(count))


def atom_for_insert(before: Optional[str], after: Optional[str]) -> str:
    """An atom for a node inserted between siblings ``before`` and ``after``.

    Either bound may be ``None`` (insert at the front / at the end).  The
    result is strictly between the bounds and never collides, so the
    surrounding siblings keep their keys (no relabeling on updates).
    """
    if before is None and after is None:
        return sibling_atom(0)
    if before is None:
        return atom_before(after)  # type: ignore[arg-type]
    if after is None:
        return atom_after(before)
    return atom_between(before, after)


class SiblingKeyAllocator:
    """Allocates child keys under one parent, tracking used sibling atoms.

    Used by the storage manager both at document load (sequential, gapped)
    and at update time (between two existing atoms).
    """

    def __init__(self, parent: Optional[FlexKey] = None,
                 existing: Sequence[str] = ()):
        self._parent = parent
        self._atoms = sorted(existing)

    @property
    def atoms(self) -> tuple[str, ...]:
        return tuple(self._atoms)

    def _register(self, atom: str) -> FlexKey:
        # Insert keeping sorted order; duplicates are a logic error upstream.
        import bisect

        idx = bisect.bisect_left(self._atoms, atom)
        if idx < len(self._atoms) and self._atoms[idx] == atom:
            raise ValueError(f"sibling atom {atom!r} already allocated")
        self._atoms.insert(idx, atom)
        if self._parent is None:
            return FlexKey(atom)
        return self._parent.child(atom)

    def append(self) -> FlexKey:
        """Key for a new last child."""
        if not self._atoms:
            return self._register(sibling_atom(0))
        return self._register(atom_after(self._atoms[-1]))

    def prepend(self) -> FlexKey:
        """Key for a new first child."""
        if not self._atoms:
            return self._register(sibling_atom(0))
        return self._register(atom_before(self._atoms[0]))

    def between(self, before_atom: str, after_atom: Optional[str]) -> FlexKey:
        """Key for a child inserted right after the sibling ``before_atom``."""
        return self._register(atom_for_insert(before_atom, after_atom))

    def release(self, atom: str) -> None:
        """Forget an atom after its node is deleted (key is never reused)."""
        try:
            self._atoms.remove(atom)
        except ValueError:
            pass
