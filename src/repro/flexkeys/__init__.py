"""FlexKey order/identity encoding (Chapter 3 of the paper)."""

from .key import (
    COMPOSE_SEP,
    LEVEL_SEP,
    FlexKey,
    FlexKeyError,
    atom_after,
    atom_before,
    atom_between,
    compare,
    compose,
    compose_values,
    order_of,
)
from .generator import (
    SiblingKeyAllocator,
    atom_for_insert,
    sibling_atom,
    sibling_atoms,
)

__all__ = [
    "COMPOSE_SEP",
    "LEVEL_SEP",
    "FlexKey",
    "FlexKeyError",
    "SiblingKeyAllocator",
    "atom_after",
    "atom_before",
    "atom_between",
    "atom_for_insert",
    "compare",
    "compose",
    "compose_values",
    "order_of",
    "sibling_atom",
    "sibling_atoms",
]
