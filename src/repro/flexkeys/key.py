"""FlexKey: lexicographic, update-stable order/identity encoding for XML.

A FlexKey (Section 3.3.1 of the paper, after the MASS keys of [DR03]) is a
dot-separated sequence of variable-length lowercase strings.  The key of a
node is the concatenation of the keys of all its ancestors plus the node's
own sibling key, so

* the key identifies the unique root-to-node path,
* lexicographic comparison of keys yields document order at any level, and
* a key strictly between any two keys always exists (``key_between``), so
  inserts never force relabeling.

Keys may carry an *overriding order* — another FlexKey attached to the node
identity that represents a query-imposed order different from the one the
identity encodes (Section 3.3.2).  All comparisons go through
:func:`order_of`, which prefers the overriding order when present.

Composed keys (``compose``) join several FlexKeys with the ``..`` delimiter
and are used to encode mixed major/minor orders (e.g. by the Combine
operator) and lineage bodies of semantic identifiers.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterable, Optional

#: Separator between hierarchy levels inside one key.
LEVEL_SEP = "."
#: Separator between whole keys inside a composed key.
COMPOSE_SEP = ".."

_ALPHABET = "abcdefghijklmnopqrstuvwxyz"
_FIRST = _ALPHABET[0]
_LAST = _ALPHABET[-1]


class FlexKeyError(ValueError):
    """Raised for malformed FlexKey strings or impossible key requests."""


def _validate_atom(atom: str) -> None:
    if not atom:
        raise FlexKeyError("empty FlexKey component")
    for ch in atom:
        if ch not in _ALPHABET:
            raise FlexKeyError(f"invalid FlexKey character {ch!r} in {atom!r}")


@total_ordering
class FlexKey:
    """An immutable FlexKey, optionally carrying an overriding order key.

    Equality and hashing are by the identity string only; ordering compares
    ``order_of(self)`` with ``order_of(other)`` so overriding orders take
    effect transparently (Section 3.3.2: ``k1 < k2 <=> order(k1) < order(k2)``).
    """

    __slots__ = ("_value", "_override", "_atoms", "_order")

    def __init__(self, value: str, override: Optional["FlexKey"] = None):
        if not value:
            raise FlexKeyError("FlexKey value must be non-empty")
        self._value = value
        self._override = override
        # Lazily-memoized derived forms: the parsed atom tuple and the
        # effective order token.  Keys are immutable, so both are computed
        # at most once per instance — comparisons and sorts stop
        # re-splitting / re-chasing override chains on every call.
        self._atoms: Optional[tuple[str, ...]] = None
        self._order: Optional[str] = None

    # -- construction helpers -------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "FlexKey":
        """Parse ``"b.f[a.c]"`` style text (override in square brackets)."""
        override = None
        if text.endswith("]"):
            open_idx = text.index("[")
            override = cls.parse(text[open_idx + 1:-1])
            text = text[:open_idx]
        for atom in _split_atoms(text):
            _validate_atom(atom)
        return cls(text, override)

    @classmethod
    def root(cls, atom: str = "b") -> "FlexKey":
        _validate_atom(atom)
        return cls(atom)

    def child(self, atom: str) -> "FlexKey":
        """Key for a child whose sibling key is ``atom``."""
        _validate_atom(atom)
        return FlexKey(self._value + LEVEL_SEP + atom)

    def with_override(self, override: Optional["FlexKey"]) -> "FlexKey":
        """Return a copy of this key carrying ``override`` as its order."""
        return FlexKey(self._value, override)

    def without_override(self) -> "FlexKey":
        if self._override is None:
            return self
        return FlexKey(self._value)

    # -- accessors -------------------------------------------------------------

    @property
    def value(self) -> str:
        return self._value

    @property
    def override(self) -> Optional["FlexKey"]:
        return self._override

    @property
    def atoms(self) -> tuple[str, ...]:
        """The per-level components of this key (composed keys flattened)."""
        atoms = self._atoms
        if atoms is None:
            atoms = self._atoms = tuple(_split_atoms(self._value))
        return atoms

    def order_token(self) -> str:
        """The memoized effective order string (override chain resolved)."""
        token = self._order
        if token is None:
            if self._override is not None:
                token = self._override.order_token()
            else:
                token = self._value
            self._order = token
        return token

    @property
    def depth(self) -> int:
        return len(self.atoms)

    @property
    def is_composed(self) -> bool:
        return COMPOSE_SEP in self._value

    def parent(self) -> Optional["FlexKey"]:
        """The key of this node's parent, or None for a root key."""
        if self.is_composed:
            raise FlexKeyError("composed keys have no parent")
        idx = self._value.rfind(LEVEL_SEP)
        if idx < 0:
            return None
        return FlexKey(self._value[:idx])

    def local(self) -> str:
        """The last (own) component of this key."""
        return self.atoms[-1]

    # -- relationships ----------------------------------------------------------

    def is_ancestor_of(self, other: "FlexKey") -> bool:
        """True when this key is a *proper* ancestor of ``other``.

        Containment is determined purely from the key strings — a frequent
        operation in XML query execution that must not touch the data.
        """
        prefix = self._value + LEVEL_SEP
        return other._value.startswith(prefix)

    def is_descendant_of(self, other: "FlexKey") -> bool:
        return other.is_ancestor_of(self)

    def is_parent_of(self, other: "FlexKey") -> bool:
        parent = other.parent() if not other.is_composed else None
        return parent is not None and parent._value == self._value

    def relative_to(self, ancestor: "FlexKey") -> str:
        """The key suffix below ``ancestor`` (raises unless related)."""
        if not ancestor.is_ancestor_of(self):
            raise FlexKeyError(f"{ancestor} is not an ancestor of {self}")
        return self._value[len(ancestor._value) + 1:]

    # -- dunder plumbing ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FlexKey):
            return NotImplemented
        return self._value == other._value

    def __hash__(self) -> int:
        return hash(self._value)

    def __lt__(self, other: "FlexKey") -> bool:
        return self.order_token() < other.order_token()

    def __repr__(self) -> str:
        if self._override is not None:
            return f"{self._value}[{self._override!r}]"
        return self._value

    def __str__(self) -> str:
        return repr(self)


def _split_atoms(value: str) -> list[str]:
    # Composed keys flatten naturally: "a.b..c.d" -> a, b, c, d with an empty
    # atom marking the compose boundary; filter it but keep ordering exact by
    # treating the boundary as a level separator (".." sorts before any
    # letter, matching the intent that a composed key extends its prefix).
    return [atom for atom in value.split(LEVEL_SEP) if atom]


def order_of(key: FlexKey) -> str:
    """The effective order string for ``key`` (override wins, memoized)."""
    return key.order_token()


def compare(k1: FlexKey, k2: FlexKey) -> int:
    """Three-way comparison of effective orders."""
    o1, o2 = k1.order_token(), k2.order_token()
    if o1 < o2:
        return -1
    if o1 > o2:
        return 1
    return 0


def compose(*keys: FlexKey) -> FlexKey:
    """Compose several keys into one (order reflects the argument order).

    ``compose(b.b, e.f) == "b.b..e.f"`` — used for mixed major/minor orders.
    """
    if not keys:
        raise FlexKeyError("compose() requires at least one key")
    return FlexKey(COMPOSE_SEP.join(k.value for k in keys))


def compose_values(values: Iterable[str]) -> str:
    """Compose raw strings (values or keys) into one lineage string."""
    parts = list(values)
    if not parts:
        raise FlexKeyError("compose_values() requires at least one part")
    return COMPOSE_SEP.join(parts)


def atom_between(low: str, high: str) -> str:
    """A sibling atom strictly between ``low`` and ``high`` (low < high).

    Works over the variable-length string space: when the two atoms are
    adjacent, the result extends ``low`` — "we can always create new gaps"
    (Section 3.4.4).  Maintains the invariant that atoms never end in ``a``
    (the smallest digit), which guarantees a key *before* any atom exists too.
    """
    if low >= high:
        raise FlexKeyError(
            f"atom_between requires low < high, got {low!r} >= {high!r}"
        )
    candidate = _midpoint(low, high)
    if not (low < candidate < high):  # pragma: no cover - defensive
        raise FlexKeyError(f"failed to find atom between {low!r} and {high!r}")
    return candidate


def _midpoint(low: str, high: Optional[str]) -> str:
    """A string strictly between ``low`` and ``high`` (``None`` = +infinity).

    Port of the fractional-indexing midpoint over digits ``a..z``.  Inputs
    must not end in ``a`` (unless empty); the output never ends in ``a``.
    """
    if high is not None:
        # Strip the longest common prefix, treating `low` as padded with 'a's.
        i = 0
        while i < len(high) and (low[i] if i < len(low) else _FIRST) == high[i]:
            i += 1
        if i > 0:
            return high[:i] + _midpoint(low[i:], high[i:])
    digit_low = _ALPHABET.index(low[0]) if low else 0
    digit_high = _ALPHABET.index(high[0]) if high is not None else len(_ALPHABET)
    if digit_high - digit_low > 1:
        return _ALPHABET[(digit_low + digit_high) // 2]
    # First digits are consecutive.
    if high is not None and len(high) > 1:
        # `high` truncated to its first digit sits strictly between.
        return high[:1]
    # `high` is a single digit (or +inf): keep low's first digit, recurse on
    # low's tail against +infinity.
    return _ALPHABET[digit_low] + _midpoint(low[1:] if low else "", None)


def atom_after(atom: str) -> str:
    """An atom strictly greater than ``atom``."""
    return _midpoint(atom, None)


def atom_before(atom: str) -> str:
    """An atom strictly smaller than ``atom``."""
    if atom <= _FIRST:
        raise FlexKeyError(f"no atom exists before {atom!r}")
    return _midpoint("", atom)
