"""The observability master switch.

Instrumentation across the engine is always *compiled in* but gated by
this single module-level flag: every counter increment, histogram
observation and span creation first checks ``STATE.enabled``, which makes
the disabled cost one attribute load and one branch.  The flag defaults
to on — the near-free steady state is "enabled, nothing attached" —
and :func:`disabled` exists mainly for differential tests proving the
flag cannot change any maintained extent.
"""

from __future__ import annotations

from contextlib import contextmanager

__all__ = ["STATE", "disabled", "is_enabled", "set_enabled"]


class _ObsState:
    """Singleton process-wide switch (see module docstring)."""

    __slots__ = ("enabled",)

    def __init__(self):
        self.enabled = True


STATE = _ObsState()


def is_enabled() -> bool:
    return STATE.enabled


def set_enabled(flag: bool) -> bool:
    """Flip the master switch; returns the previous value."""
    previous = STATE.enabled
    STATE.enabled = bool(flag)
    return previous


@contextmanager
def disabled():
    """``with repro.obs.disabled(): ...`` — instrumentation off inside."""
    previous = set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)
