"""Engine-wide observability: metrics, tracing spans, Prometheus, EXPLAIN.

The layer has four parts:

* :mod:`~repro.obs.core` — the module-level enabled flag every
  instrumented hot path checks (one attribute load + branch when off);
* :mod:`~repro.obs.metrics` — a zero-dependency registry of counters,
  gauges and reservoir-quantile histograms with sync hooks that pull
  component-local stats (router, operator-state store, structural
  index) into each snapshot;
* :mod:`~repro.obs.tracing` — hierarchical spans over the V-P-A hot
  path, delivered to :class:`TraceSink` subscribers on completion;
* :mod:`~repro.obs.prometheus` / :mod:`~repro.obs.explain` — the text
  exporters: :func:`render_prometheus` for scrapers, and the live
  ``EXPLAIN`` plan renderer behind :meth:`repro.api.Database.explain`.

This package ``__init__`` must stay import-light: the hot layers
(``repro.xat.base``, storage, multiview) import :mod:`repro.obs.core`
at module load, so pulling engine modules in here would be circular.
:mod:`repro.obs.explain` is therefore imported lazily by the session
API rather than re-exported.
"""

from .core import STATE, disabled, is_enabled, set_enabled
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .prometheus import render_prometheus
from .tracing import CollectingSink, Span, TraceSink, Tracer

__all__ = [
    "CollectingSink",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "STATE",
    "Span",
    "TraceSink",
    "Tracer",
    "disabled",
    "is_enabled",
    "render_prometheus",
    "set_enabled",
]
