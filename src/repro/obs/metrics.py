"""Zero-dependency metrics: counters, gauges, reservoir histograms.

The registry is the pull side of the observability layer: hot code holds
plain metric objects (an increment is one guarded attribute add, no dict
lookup) and exporters — :meth:`repro.api.Database.metrics`,
:func:`repro.obs.render_prometheus` — read a consistent snapshot on
demand.  Components whose counters live elsewhere (the router's
:class:`~repro.multiview.router.RouterStats`, the operator-state store,
the structural index) register *sync hooks* that mirror their current
values into the registry just before each snapshot, so instrumentation
never adds a second increment to an already-counted hot path.

Everything is gated by the module-level enabled flag in
:mod:`repro.obs.core`: with observability disabled every ``inc`` /
``observe`` returns immediately, and the differential tests assert the
flag cannot change any view extent.

Histograms keep exact ``count`` / ``sum`` / ``min`` / ``max`` plus a
fixed-size reservoir (Vitter's algorithm R with a deterministic LCG, so
quantile estimates are reproducible run to run) from which
:meth:`Histogram.quantile` interpolates.
"""

from __future__ import annotations

from typing import Callable, Optional

from .core import STATE

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self):
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if STATE.enabled:
            self.value += amount

    def set(self, value) -> None:
        """Mirror an externally accumulated monotone count (sync hooks)."""
        if STATE.enabled:
            self.value = value

    def export(self):
        return self.value


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self):
        self.value = 0

    def set(self, value) -> None:
        if STATE.enabled:
            self.value = value

    def inc(self, amount=1) -> None:
        if STATE.enabled:
            self.value += amount

    def dec(self, amount=1) -> None:
        if STATE.enabled:
            self.value -= amount

    def export(self):
        return self.value


#: quantiles reported by snapshots and the Prometheus summary rendering
DEFAULT_QUANTILES = (0.5, 0.9, 0.99)

_LCG_MULT = 6364136223846793005
_LCG_INC = 1442695040888963407
_LCG_MASK = (1 << 64) - 1


class Histogram:
    """Exact count/sum/min/max plus a deterministic sample reservoir."""

    __slots__ = ("count", "sum", "min", "max", "samples", "capacity",
                 "_rng")
    kind = "histogram"

    def __init__(self, capacity: int = 256):
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.capacity = capacity
        self.samples: list[float] = []
        self._rng = 0x9E3779B97F4A7C15

    def observe(self, value: float) -> None:
        if not STATE.enabled:
            return
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self.samples) < self.capacity:
            self.samples.append(value)
            return
        # Algorithm R with a 64-bit LCG: deterministic, no import of
        # ``random``, uniform enough for quantile estimation.
        self._rng = (self._rng * _LCG_MULT + _LCG_INC) & _LCG_MASK
        slot = (self._rng >> 16) % self.count
        if slot < self.capacity:
            self.samples[slot] = value

    def set_total(self, count: int, total: float) -> None:
        """Mirror an externally accumulated (count, sum) pair (sync
        hooks) — reservoir quantiles stay whatever direct ``observe``
        calls produced."""
        if STATE.enabled:
            self.count = count
            self.sum = total

    def quantile(self, q: float) -> Optional[float]:
        """Reservoir quantile by linear interpolation; None when empty."""
        if not self.samples:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        ordered = sorted(self.samples)
        position = q * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    def export(self) -> dict:
        result = {"count": self.count, "sum": self.sum,
                  "min": self.min, "max": self.max}
        for q in DEFAULT_QUANTILES:
            result[f"p{int(q * 100)}"] = self.quantile(q)
        return result


class _Family:
    """All instances of one metric name, keyed by their label sets."""

    __slots__ = ("name", "kind", "help", "instances")

    def __init__(self, name: str, kind: str, help_text: str):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.instances: dict[tuple, object] = {}


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class MetricsRegistry:
    """Named counters/gauges/histograms with label sets and sync hooks."""

    def __init__(self):
        self._families: dict[str, _Family] = {}
        self._sync_hooks: list[Callable[["MetricsRegistry"], None]] = []

    # -- metric lookup (get-or-create) -------------------------------------------------

    def _metric(self, name: str, factory, kind: str, help_text: str,
                labels: dict):
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = _Family(name, kind, help_text)
        elif family.kind != kind:
            raise ValueError(f"metric {name!r} is a {family.kind}, "
                             f"not a {kind}")
        key = _label_key(labels)
        metric = family.instances.get(key)
        if metric is None:
            metric = family.instances[key] = factory()
        return metric

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._metric(name, Counter, "counter", help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._metric(name, Gauge, "gauge", help, labels)

    def histogram(self, name: str, help: str = "", **labels) -> Histogram:
        return self._metric(name, Histogram, "histogram", help, labels)

    # -- sync hooks ---------------------------------------------------------------------

    def add_sync_hook(self,
                      hook: Callable[["MetricsRegistry"], None]) -> None:
        """``hook(registry)`` runs before every snapshot/render — mirror
        externally accumulated stats into the registry there."""
        self._sync_hooks.append(hook)

    def remove_sync_hook(self, hook) -> None:
        try:
            self._sync_hooks.remove(hook)
        except ValueError:
            pass

    def sync(self) -> None:
        for hook in list(self._sync_hooks):
            hook(self)

    # -- export -------------------------------------------------------------------------

    def families(self) -> list[_Family]:
        return list(self._families.values())

    def snapshot(self) -> dict:
        """A structured, JSON-serializable view of every metric."""
        self.sync()
        out: dict = {}
        for family in self._families.values():
            values = {}
            for key, metric in family.instances.items():
                label_text = ",".join(f"{k}={v}" for k, v in key)
                values[label_text] = metric.export()
            out[family.name] = {"kind": family.kind, "help": family.help,
                                "values": values}
        return out
