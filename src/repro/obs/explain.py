"""Live EXPLAIN: a view's algebra plan annotated with runtime counters.

``db.explain("sales")`` renders the registered view's prepared XAT plan
as an indented operator tree, each line carrying the counters the
instrumented :class:`~repro.xat.base.ExecutionContext` accumulated on
the operator instance — full-mode and delta-mode executions with tuples
in/out — plus, for subplans the persistent
:class:`~repro.engine.opstate.OperatorStateStore` knows by structural
signature, the per-signature serve statistics (hits / misses / patches /
invalidations and current cached row count).  A plan whose maintenance
regressed (a side table re-derived every batch, a delta fanning out
wider than its batch) is readable straight off the tree, no profiler
attached.

This module is imported lazily by the session API — it may import engine
internals, but ``repro.obs`` itself must stay import-light (the hot
layers import ``repro.obs.core`` at module load).
"""

from __future__ import annotations

from ..engine.opstate import subplan_signature
from ..xat.base import obs_op_stats

__all__ = ["render_explain"]


def _params(op) -> str:
    """The operator's distinguishing parameters, via its signature core."""
    from ..engine.opstate import _sig_core

    core = _sig_core(op)
    parts = [str(part) for part in core[1:]]
    return f"[{', '.join(parts)}]" if parts else ""


def _op_line(op, store) -> str:
    stats = obs_op_stats(op)
    child_stats = [obs_op_stats(child) for child in op.inputs]
    full_in = sum(c["tuples_out"] for c in child_stats)
    delta_in = sum(c["delta_tuples_out"] for c in child_stats)
    text = (f"{type(op).__name__}{_params(op)}"
            f"  full: runs={stats['runs']} in={full_in}"
            f" out={stats['tuples_out']}"
            f" · Δ: runs={stats['delta_runs']} in={delta_in}"
            f" out={stats['delta_tuples_out']}")
    if store is not None:
        entry_stats = store.per_signature().get(subplan_signature(op))
        if entry_stats is not None:
            rows = entry_stats["rows"]
            text += (f" · state: served={entry_stats['hits']}"
                     f" recomputed={entry_stats['misses']}"
                     f" patched={entry_stats['patches']}"
                     f" rows={'-' if rows is None else rows}")
    return text


def _walk(op, store, prefix: str, last: bool, lines: list,
          is_root: bool) -> None:
    if is_root:
        lines.append(_op_line(op, store))
        child_prefix = ""
    else:
        connector = "└─ " if last else "├─ "
        lines.append(prefix + connector + _op_line(op, store))
        child_prefix = prefix + ("   " if last else "│  ")
    children = list(op.inputs)
    for index, child in enumerate(children):
        _walk(child, store, child_prefix, index == len(children) - 1,
              lines, False)


def render_explain(name: str, plan, *, policy=None, cost=None, stats=None,
                   report=None, store=None, extent_size=None,
                   pending_trees: int = 0, query_text: str = "",
                   plan_cache=None) -> str:
    """The annotated plan tree of one maintained view as display text.

    ``plan_cache`` (a :class:`repro.plan.PlanCache`) adds the compiled
    instruction listings — one program per compiled execution mode, each
    line carrying the live in/out/Δ row counters and kernel-vs-fallback
    serve counts — below the operator tree."""
    lines = [f"view {name!r}"]
    if policy is not None:
        lines[0] += f"  policy={getattr(policy, 'kind', policy)}"
    if extent_size is not None:
        lines[0] += f"  extent_nodes={extent_size}"
    lines[0] += f"  pending_trees={pending_trees}"
    if query_text:
        lines.append(f"query: {' '.join(query_text.split())}")
    if stats is not None:
        lines.append(f"maintenance: flushes={stats.flushes}"
                     f" recomputes={stats.recomputes}"
                     f" propagated_trees={stats.propagated_trees}"
                     f" routed_trees={stats.routed_trees}")
    if report is not None:
        lines.append(f"timings: validate={report.validate_seconds:.6f}s"
                     f" propagate={report.propagate_seconds:.6f}s"
                     f" apply={report.apply_seconds:.6f}s"
                     f" batches={report.batches}"
                     f" state_hits={report.state_hits}"
                     f" state_misses={report.state_misses}"
                     f" state_patches={report.state_patches}")
    if cost is not None:
        recompute = cost.recompute_seconds
        per_tree = cost.per_tree_seconds
        lines.append(
            "cost model: recompute="
            + (f"{recompute:.6f}s" if recompute is not None else "?")
            + " per_tree="
            + (f"{per_tree:.6f}s" if per_tree is not None else "?")
            + f" bias={cost.bias}")
    lines.append("plan:")
    _walk(plan, store, "", True, lines, True)
    if plan_cache is not None:
        for compiled in plan_cache.plans_for(plan):
            lines.append(compiled.listing())
    return "\n".join(lines)
