"""Hierarchical tracing spans for the maintenance hot path.

A :class:`Tracer` hands out :class:`Span` context managers; entering a
span pushes it on the tracer's stack (so children know their parent) and
leaving it records the duration and delivers the completed span to every
attached :class:`TraceSink`.  Sinks receive spans **on completion**, so
children arrive before their parents — the order a streaming consumer
(the future network server pushing traces to clients) wants.

The whole machinery is pay-for-use: ``tracer.span(...)`` returns a
shared no-op object unless observability is enabled *and* at least one
sink is attached, which keeps the instrumented hot paths at one
attribute load + branch when nobody is watching.

Spans that do not wrap a code region (a phase whose duration was
measured elsewhere, e.g. the engine's propagate/apply split) are emitted
with :meth:`Tracer.record`, which synthesizes a completed child of the
current span.
"""

from __future__ import annotations

import itertools
import time
from typing import Optional, Protocol, runtime_checkable

from .core import STATE

__all__ = ["Span", "TraceSink", "Tracer"]

_span_ids = itertools.count(1)


class Span:
    """One timed region of a maintenance pass."""

    __slots__ = ("span_id", "parent_id", "name", "attrs", "start",
                 "duration", "depth")

    def __init__(self, name: str, parent: Optional["Span"], attrs: dict):
        self.span_id = next(_span_ids)
        self.parent_id = parent.span_id if parent is not None else None
        self.depth = parent.depth + 1 if parent is not None else 0
        self.name = name
        self.attrs = attrs
        self.start = 0.0
        self.duration = 0.0

    def set(self, **attrs) -> None:
        """Attach attributes discovered while the span is open."""
        self.attrs.update(attrs)

    def as_dict(self) -> dict:
        return {"span_id": self.span_id, "parent_id": self.parent_id,
                "depth": self.depth, "name": self.name,
                "start": self.start, "duration": self.duration,
                "attrs": dict(self.attrs)}

    def __repr__(self) -> str:
        return (f"<Span {self.name} #{self.span_id} "
                f"parent={self.parent_id} {self.duration * 1e3:.3f}ms>")


@runtime_checkable
class TraceSink(Protocol):
    """Anything receiving span-complete events — tests, log writers, the
    future server's subscription fan-out."""

    def on_span(self, span: Span) -> None:
        ...


class _NoopSpan:
    """Shared inert span: handed out when nobody is listening."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        return False

    def set(self, **attrs) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class _ActiveSpan:
    """Context manager pairing a Span with its tracer bookkeeping."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self.span.start = time.perf_counter()
        self._tracer._stack.append(self.span)
        return self.span

    def __exit__(self, exc_type, exc_value, traceback):
        span = self.span
        span.duration = time.perf_counter() - span.start
        stack = self._tracer._stack
        if stack and stack[-1] is span:
            stack.pop()
        self._tracer._deliver(span)
        return False


class Tracer:
    """Produces nested spans and fans completed ones out to sinks."""

    def __init__(self):
        self._sinks: list[TraceSink] = []
        self._stack: list[Span] = []

    @property
    def active(self) -> bool:
        return bool(self._sinks) and STATE.enabled

    def add_sink(self, sink: TraceSink) -> None:
        self._sinks.append(sink)

    def remove_sink(self, sink: TraceSink) -> None:
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def span(self, name: str, **attrs):
        """A context manager timing one region as a child of the current
        span; a shared no-op when nobody is listening."""
        if not self.active:
            return NOOP_SPAN
        return _ActiveSpan(self, Span(name, self.current(), attrs))

    def record(self, name: str, duration: float, **attrs) -> None:
        """Emit an already-measured phase as a completed child span."""
        if not self.active:
            return
        span = Span(name, self.current(), attrs)
        span.start = time.perf_counter() - duration
        span.duration = duration
        self._deliver(span)

    def _deliver(self, span: Span) -> None:
        for sink in list(self._sinks):
            sink.on_span(span)


class CollectingSink:
    """A list-backed sink (tests and ad-hoc debugging)."""

    def __init__(self):
        self.spans: list[Span] = []

    def on_span(self, span: Span) -> None:
        self.spans.append(span)

    def by_name(self, name: str) -> list[Span]:
        return [span for span in self.spans if span.name == name]
