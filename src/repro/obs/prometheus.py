"""Prometheus text-format exporter for a :class:`MetricsRegistry`.

Renders the 0.0.4 exposition format from a registry snapshot — plain
text, no client library.  Counters and gauges map directly; histograms
are rendered as summaries (reservoir quantiles plus exact ``_sum`` and
``_count`` series), which is the honest representation of
quantile-from-reservoir data.  Metric and label names are sanitized to
the Prometheus grammar; every name gets the ``repro_`` namespace prefix
unless it already carries one.
"""

from __future__ import annotations

import re

from .metrics import DEFAULT_QUANTILES, MetricsRegistry

__all__ = ["render_prometheus"]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_OK = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str) -> str:
    name = _NAME_OK.sub("_", name)
    if not name.startswith("repro_"):
        name = "repro_" + name
    return name


def _label_text(key: tuple, extra: str = "") -> str:
    parts = [f'{_LABEL_OK.sub("_", k)}="{_escape(str(v))}"'
             for k, v in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", "\\n")


def _value_text(value) -> str:
    if value is None:
        return "NaN"
    return repr(float(value))


def render_prometheus(metrics: MetricsRegistry) -> str:
    """The registry's current state in Prometheus text format."""
    metrics.sync()
    lines: list[str] = []
    for family in metrics.families():
        name = _metric_name(family.name)
        if family.help:
            lines.append(f"# HELP {name} {family.help}")
        kind = "summary" if family.kind == "histogram" else family.kind
        lines.append(f"# TYPE {name} {kind}")
        for key, metric in family.instances.items():
            if family.kind == "histogram":
                for q in DEFAULT_QUANTILES:
                    labels = _label_text(key, f'quantile="{q}"')
                    lines.append(f"{name}{labels} "
                                 f"{_value_text(metric.quantile(q))}")
                base = _label_text(key)
                lines.append(f"{name}_sum{base} {_value_text(metric.sum)}")
                lines.append(f"{name}_count{base} {metric.count}")
            else:
                lines.append(f"{name}{_label_text(key)} "
                             f"{_value_text(metric.value)}")
    return "\n".join(lines) + "\n"
