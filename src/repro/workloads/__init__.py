"""Workload generators: the running example and XMark-like site.xml."""

from . import bib, xmark

__all__ = ["bib", "xmark"]
