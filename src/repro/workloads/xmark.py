"""XMark-like ``site.xml`` generator (the Fig 3.5 schema fragment).

The paper's order/semantic-id experiments (Sections 3.5, 4.8) run XMark
queries on ``site.xml`` files of 5–25 MB.  This deterministic generator
produces the same structural fragment — people/person (name, address/city,
profile with interests and education), closed_auctions (seller/buyer/date),
open_auctions (initial, reserve) — with a ``scale`` knob.  Sizes are scaled
down to laptop budgets; the figures report *trends across scales*, which
the generator preserves.
"""

from __future__ import annotations

import random

from ..storage import StorageManager
from ..xmlmodel import XmlDocument

CITIES = ["Worcester", "Boston", "Cairo", "Alexandria", "Munich", "Tokyo",
          "Paris", "Sydney", "Lima", "Oslo"]
EDUCATIONS = ["High School", "College", "Graduate School", "Other"]


def generate_site(num_persons: int, num_closed: int | None = None,
                  num_open: int | None = None, seed: int = 42) -> str:
    """Generate site.xml with ``num_persons`` people (auctions scale along)."""
    rng = random.Random(seed)
    if num_closed is None:
        num_closed = num_persons
    if num_open is None:
        num_open = num_persons // 2
    parts = ["<site>", "<people>"]
    for i in range(num_persons):
        city = CITIES[rng.randrange(len(CITIES))]
        education = EDUCATIONS[rng.randrange(len(EDUCATIONS))]
        income = 30000 + rng.randrange(120000)
        interests = "".join(
            f'<interest category="category{rng.randrange(40)}"/>'
            for _ in range(rng.randrange(4)))
        parts.append(
            f'<person id="person{i}">'
            f'<name>Person Name {i}</name>'
            f'<address><street>{i} Main St</street><city>{city}</city>'
            f'<country>United States</country></address>'
            f'<profile income="{income}">'
            f'{interests}'
            f'<education>{education}</education>'
            f'<gender>{"male" if i % 2 else "female"}</gender>'
            f'<business>{"Yes" if i % 3 else "No"}</business>'
            f'<age>{18 + rng.randrange(60)}</age>'
            f'</profile>'
            f'</person>')
    parts.append("</people>")
    parts.append("<closed_auctions>")
    for i in range(num_closed):
        seller = rng.randrange(num_persons) if num_persons else 0
        buyer = rng.randrange(num_persons) if num_persons else 0
        parts.append(
            f'<closed_auction id="closed{i}">'
            f'<seller person="person{seller}"/>'
            f'<buyer person="person{buyer}"/>'
            f'<date>{1 + i % 28:02d}/{1 + i % 12:02d}/200{i % 6}</date>'
            f'</closed_auction>')
    parts.append("</closed_auctions>")
    parts.append("<open_auctions>")
    for i in range(num_open):
        initial = 5 + (i * 13) % 200
        parts.append(
            f'<open_auction id="open{i}">'
            f'<initial>{initial}.00</initial>'
            f'<reserve>{initial * 2}.00</reserve>'
            f'</open_auction>')
    parts.append("</open_auctions>")
    parts.append("</site>")
    return "".join(parts)


def register_site(storage: StorageManager, num_persons: int,
                  seed: int = 42, name: str = "site.xml") -> None:
    storage.register(XmlDocument.from_string(
        name, generate_site(num_persons, seed=seed)))


# -- the four order-experiment queries of Fig 3.6 ---------------------------------------

#: Query 1 — document order only: expose whole profile fragments.
ORDER_QUERY_1 = """<result>{
for $p in doc("site.xml")/site/people/person/profile
return $p
}</result>"""

#: Query 2 — order imposed by an order-by clause over distinct cities.
ORDER_QUERY_2 = """<result>{
for $c in distinct-values(doc("site.xml")/site/people/person/address/city)
order by $c
return <city>{$c}</city>
}</result>"""

#: Query 3 — order imposed by the nesting of for clauses (a join).
ORDER_QUERY_3 = """<result>{
for $p in doc("site.xml")/site/people/person,
    $c in doc("site.xml")/site/closed_auctions/closed_auction
where $p/@id = $c/seller/@person
return <sale>{$c/date}</sale>
}</result>"""

#: Query 4 — order imposed by new result construction (two sub-queries).
ORDER_QUERY_4 = """<result>
{<customers>{
 for $p in doc("site.xml")/site/people/person
 return <customer><location>{$p/address/city}</location>{$p/name}</customer>
}</customers>}
{<open_bids>{
 for $oa in doc("site.xml")/site/open_auctions/open_auction
 return <bid>{$oa/reserve}{$oa/initial}</bid>
}</open_bids>}
</result>"""

#: Chapter 9's grouped query: persons grouped by city (the "persons-list"
#: fragment of Fig 9.6 is one city group).
PERSONS_BY_CITY_QUERY = """<result>{
for $c in distinct-values(doc("site.xml")/site/people/person/address/city)
order by $c
return <city-group name="{$c}">
 <persons-list>{
  for $p in doc("site.xml")/site/people/person
  where $c = $p/address/city
  return <entry>{$p/name}</entry>
 }</persons-list>
</city-group>
}</result>"""

#: Chapter 9 Query 1 style: selection view over one document.
SELECTION_QUERY = """<result>{
for $p in doc("site.xml")/site/people/person
where $p/profile/age > "40"
return <senior>{$p/name} {$p/address/city}</senior>
}</result>"""

#: Chapter 9 Query 2 style: join view over persons and closed auctions.
JOIN_QUERY = """<result>{
for $p in doc("site.xml")/site/people/person,
    $c in doc("site.xml")/site/closed_auctions/closed_auction
where $p/@id = $c/seller/@person
return <sale><by>{$p/name}</by>{$c/date}</sale>
}</result>"""

#: Aggregate-per-group view: person head-count per city (Section 7.6's
#: counting aggregates under the Chapter 9 grouping shape) — the city
#: text feeds distinct-values, order by and the correlated predicate,
#: so city modifies exercise first-class pairs through AggState.
CITY_HEADCOUNT_QUERY = """<result>{
for $c in distinct-values(doc("site.xml")/site/people/person/address/city)
order by $c
return <city-stat name="{$c}">{count(
 for $p in doc("site.xml")/site/people/person
 where $c = $p/address/city
 return $p/name)}</city-stat>
}</result>"""


def new_person_xml(index: int, city: str = "Worcester",
                   age: int = 50) -> str:
    return (f'<person id="newperson{index}">'
            f'<name>New Person {index}</name>'
            f'<address><street>{index} New St</street><city>{city}</city>'
            f'<country>United States</country></address>'
            f'<profile income="55000">'
            f'<education>College</education>'
            f'<gender>female</gender><business>No</business>'
            f'<age>{age}</age></profile></person>')


def new_closed_auction_xml(index: int, seller: str) -> str:
    return (f'<closed_auction id="newclosed{index}">'
            f'<seller person="{seller}"/><buyer person="{seller}"/>'
            f'<date>01/01/2006</date></closed_auction>')
