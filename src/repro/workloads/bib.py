"""The paper's running example: bib.xml / prices.xml (Fig 1.1) — both the
fixed two-book documents and a scalable generator for benchmarks."""

from __future__ import annotations

import random

from ..storage import StorageManager
from ..xmlmodel import XmlDocument

BIB_XML = """<bib>
<book year="1994"><title>TCP/IP Illustrated</title>
 <author><last>Stevens</last><first>W.</first></author></book>
<book year="2000"><title>Data on the Web</title>
 <author><last>Abiteboul</last><first>Serge</first></author></book>
</bib>"""

PRICES_XML = """<prices>
<entry><price>39.95</price><b-title>Data on the Web</b-title></entry>
<entry><price>65.95</price><b-title>TCP/IP Illustrated</b-title></entry>
<entry><price>69.99</price>
 <b-title>Advanced Programming in the Unix environment</b-title></entry>
</prices>"""

#: The view of Fig 1.2(a): books grouped by year, joined with prices.
YEAR_GROUP_QUERY = """<result>{
FOR $y in distinct-values(doc("bib.xml")/bib/book/@year)
ORDER BY $y
RETURN
 <yGroup Y="{$y}">
  <books>{
   for $b in doc("bib.xml")/bib/book, $e in doc("prices.xml")/prices/entry
   WHERE $y = $b/@year and $b/title = $e/b-title
   RETURN <entry>{$b/title} {$e/price}</entry>
  }</books>
 </yGroup>
}</result>"""

NEW_BOOK_FRAGMENT = (
    '<book year="1994"><title>Advanced Programming in the Unix environment'
    '</title><author><last>Stevens</last><first>W.</first></author></book>')


def register_running_example(storage: StorageManager) -> None:
    """Register the two Fig 1.1 documents."""
    storage.register(XmlDocument.from_string("bib.xml", BIB_XML))
    storage.register(XmlDocument.from_string("prices.xml", PRICES_XML))


def generate_bib(num_books: int, num_years: int = 10,
                 seed: int = 7) -> str:
    """A scalable bib.xml: ``num_books`` books over ``num_years`` years."""
    rng = random.Random(seed)
    parts = ["<bib>"]
    for i in range(num_books):
        year = 1980 + rng.randrange(num_years)
        parts.append(
            f'<book year="{year}"><title>Book {i:06d}</title>'
            f'<author><last>Last{i % 97}</last>'
            f'<first>First{i % 31}</first></author></book>')
    parts.append("</bib>")
    return "".join(parts)


def generate_prices(num_books: int, priced_fraction: float = 0.8,
                    seed: int = 11) -> str:
    """Prices for a fraction of the generated books (join selectivity)."""
    rng = random.Random(seed)
    parts = ["<prices>"]
    for i in range(num_books):
        if rng.random() > priced_fraction:
            continue
        price = 10 + (i * 7) % 90 + round(rng.random(), 2)
        parts.append(f'<entry><price>{price:.2f}</price>'
                     f'<b-title>Book {i:06d}</b-title></entry>')
    parts.append("</prices>")
    return "".join(parts)


def new_book_xml(index: int, year: int) -> str:
    return (f'<book year="{year}"><title>New Book {index:06d}</title>'
            f'<author><last>NewLast{index}</last>'
            f'<first>NewFirst{index}</first></author></book>')
