"""Query engine: executes prepared XAT plans against the storage manager.

The engine produces either a plain query result (an XML string / node tree,
partially sorted on demand — Section 3.3.3) or a materialized
:class:`~repro.apply.extent.ExtentNode` tree with semantic ids and count
annotations, ready for incremental maintenance.
"""

from __future__ import annotations

import time
from typing import Optional

from ..apply.deep_union import FusionReport, deep_union, fuse_forest
from ..apply.extent import FOREST_TAG, ExtentNode, node_from_item
from ..storage import StorageManager
from ..xat.base import (DELTA, FULL, DeltaSpec, ExecutionContext, Profiler,
                        XatOperator)
from ..xat.construction import Expose
from ..xat.table import XatTable, items_of
from ..xmlmodel import XmlNode, serialize


class Engine:
    """Executes XAT plans; one engine per storage manager."""

    def __init__(self, storage: StorageManager):
        self.storage = storage

    # -- low-level -----------------------------------------------------------------

    def run(self, plan: XatOperator, mode: str = FULL,
            delta: Optional[DeltaSpec] = None,
            profiler: Optional[Profiler] = None, store=None,
            vm=None) -> XatTable:
        """Execute a prepared plan and return the root operator's table.

        ``store`` (an :class:`~repro.engine.opstate.OperatorStateStore`)
        plugs persistent cross-run operator state into the execution
        context; delta runs then serve FULL/ANTI side evaluation from it.
        ``vm`` (a :class:`~repro.plan.PlanVM`) routes execution through
        the compiled linear plan instead of the tree interpreter; the
        interpreter remains the lazy fallback for anything the schedule
        does not cover.
        """
        if plan.schema is None:
            raise RuntimeError("plan not prepared; call plan.prepare()")
        ctx = ExecutionContext(self.storage, mode=mode, delta=delta,
                               profiler=profiler, store=store)
        if vm is not None:
            return vm.run(plan, ctx)
        return ctx.evaluate(plan)

    # -- result materialization -----------------------------------------------------

    @staticmethod
    def exposed_column(plan: XatOperator) -> str:
        if isinstance(plan, Expose):
            return plan.col
        return plan.schema.columns[-1]

    def result_forest(self, plan: XatOperator, mode: str = FULL,
                      delta: Optional[DeltaSpec] = None,
                      profiler: Optional[Profiler] = None, store=None,
                      vm=None) -> list[ExtentNode]:
        """Execute and de-reference the exposed column into extent trees."""
        table = self.run(plan, mode=mode, delta=delta, profiler=profiler,
                         store=store, vm=vm)
        column = self.exposed_column(plan)
        prof = profiler if profiler is not None else Profiler()
        forest: list[ExtentNode] = []
        for tup in table:
            for item in items_of(tup[column]):
                node = node_from_item(item, self.storage, delta)
                if node is not None:
                    forest.append(node)
        # The final (partial) sort of Section 3.3.3: collections are almost
        # always already ordered (keys were never reshuffled), so this is
        # one verification scan per children list, sorting only if needed.
        with prof.timed("final_sort"):
            for root in forest:
                _ensure_sorted(root)
        return forest

    def propagate(self, plan: XatOperator, extent: Optional[ExtentNode],
                  spec: DeltaSpec, *, profiler: Optional[Profiler] = None,
                  report=None, before_fuse=None, store=None, vm=None
                  ) -> tuple[ExtentNode, FusionReport]:
        """One V-P-A delta pass: execute ``plan`` in delta mode for ``spec``
        and fuse the resulting delta forest into ``extent``.

        ``before_fuse`` (if given) runs between delta execution and fusion;
        the maintenance pipeline applies deferred storage deletes there —
        deletes reach storage only after propagation has read the doomed
        subtrees, per the phase discipline of Chapter 6.  ``report`` is an
        optional maintenance report (any object with ``propagate_seconds``,
        ``apply_seconds`` and ``fusion`` attributes) that receives the
        per-phase timings.
        """
        started = time.perf_counter()
        if vm is not None:
            # Root-classification memo: one compiled pass touches the
            # same few keys thousands of times across operators.
            from ..plan.vm import FastDeltaSpec
            spec = FastDeltaSpec.wrap(spec)
        forest = self.result_forest(plan, mode=DELTA, delta=spec,
                                    profiler=profiler, store=store, vm=vm)
        if store is not None:
            # Patch (or, for deletes, stage) the batch's stale operator
            # state while the update subtrees are still readable — before
            # the deferred deletes below reach storage.
            store.reconcile(spec)
        if before_fuse is not None:
            before_fuse()
        propagate_elapsed = time.perf_counter() - started
        started = time.perf_counter()
        fusion = report.fusion if report is not None else None
        extent, fusion_report = fuse_forest(extent, forest, fusion)
        if report is not None:
            report.propagate_seconds += propagate_elapsed
            report.apply_seconds += time.perf_counter() - started
        return extent, fusion_report

    def materialize(self, plan: XatOperator,
                    profiler: Optional[Profiler] = None, vm=None
                    ) -> tuple[ExtentNode, FusionReport]:
        """Initial view materialization: execute and fuse into an extent.

        The returned extent is always the synthetic forest wrapper; views
        with a single top-level constructor have a one-child forest.
        """
        forest = self.result_forest(plan, profiler=profiler, vm=vm)
        return fuse_forest(None, forest)

    @staticmethod
    def serialize_extent(extent: Optional[ExtentNode]) -> str:
        if extent is None:
            return ""
        if extent.tag == FOREST_TAG:
            return "".join(serialize(child.to_xml())
                           for child in extent.children)
        return serialize(extent.to_xml())

    def query(self, plan: XatOperator,
              profiler: Optional[Profiler] = None) -> str:
        """Plain query execution: serialized XML result."""
        extent, _report = self.materialize(plan, profiler=profiler)
        return self.serialize_extent(extent)

    def query_tree(self, plan: XatOperator) -> Optional[XmlNode]:
        extent, _report = self.materialize(plan)
        if len(extent.children) == 1:
            return extent.children[0].to_xml()
        return extent.to_xml() if extent.children else None


def _ensure_sorted(node: ExtentNode) -> None:
    """Verify (and if needed restore) sibling order by order tokens."""
    children = node.children
    for i in range(1, len(children)):
        if children[i - 1].order > children[i].order:
            children.sort(key=lambda c: c.order)
            break
    for child in children:
        _ensure_sorted(child)
