"""Query engine over XAT plans."""

from .executor import Engine

__all__ = ["Engine"]
