"""Query engine over XAT plans, plus persistent cross-run operator state."""

from .executor import Engine
from .opstate import OperatorStateStore, StoreStats, subplan_signature

__all__ = ["Engine", "OperatorStateStore", "StoreStats",
           "subplan_signature"]
