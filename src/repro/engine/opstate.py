"""Persistent per-view operator state (the Chapter 7 enable-cost escape).

Without persistent state, every maintenance pass re-derives the *unchanged*
side of the bilinear join expansion ``Δ(A ⋈ B) = ΔA ⋈ B_new ∪ A_old ⋈ ΔB``
from scratch: the per-run :class:`~repro.xat.base.ExecutionContext` memo
dies with the run, so FULL/ANTI-mode side evaluation re-scans the document
and rebuilds its hash index on every batch — O(document) per batch, exactly
the regime the paper's propagation equations promise to escape.

:class:`OperatorStateStore` persists, from one maintenance run to the next,

* **FULL-mode result tables** of stable (uncorrelated) subplans, keyed by a
  canonical structural signature so views with structurally-equal subplans
  share one entry (the registry hands every pipeline the same store, like
  the shared validation router);
* **hash-join side indexes** over those tables, keyed by the join's
  existing equi-key columns and maintained alongside the table; and
* **Distinct / Group By count state** — the cached tables of those
  operators are patched through their value/group merge rules
  (:meth:`~repro.xat.base.XatOperator.state_apply`) instead of being
  re-executed.

Cached tables always mirror *current storage* — the same state live
FULL-mode execution reads.  They are kept current *incrementally*: the
store listens to :class:`~repro.storage.StorageManager` mutations (with
the pre-deletion tag path, so relevancy survives the key drop) and

* **ignores** mutations irrelevant to an entry's own mini-SAPT (an
  unrelated update stream leaves warm state warm);
* **patches** an entry whose recorded stale mutations are exactly covered
  by the batch being propagated, by applying the subplan's *own*
  delta-mode output (O(batch), the Z-semantics merge of Chapter 6);
* **invalidates** and lazily recomputes otherwise — the safe fallback
  mirroring the cost model's incremental-vs-recompute discipline.

ANTI mode ("current state minus the update roots") is served without
re-execution wherever the subplan is *anti-projectable* (every output
tuple carries the storage keys its existence depends on): the cached table
is filtered by root coverage, and index probes filter per bucket.  Deletes
propagate before they reach storage, so a delete-phase serve *stages* the
patch and commits it when the deferred deletion events arrive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..updates.sapt import Sapt
from ..xat.base import ANTI, DELETE, DELTA, FULL, DeltaSpec, XatOperator
from ..xat.construction import (Expose, Map, Merge, Tagger, VariableBinding,
                                XmlUnion, XmlUnique)
from ..xat.grouping import Aggregate, Combine, GroupBy, TupleFunction
from ..xat.navigation import NavigateCollection, NavigateUnnest, Source
from ..xat.relational import (CartesianProduct, Distinct, Join,
                              LeftOuterJoin, OrderBy, Rename, Select,
                              _hash_keys)
from ..xat.table import AtomicItem, Item, NodeItem, XatTable, XatTuple

__all__ = ["OperatorStateStore", "StoreStats", "subplan_signature"]


# -- structural signatures ---------------------------------------------------------------
#
# Entries are keyed by a canonical description of the subplan, so two views
# holding structurally-equal subplans (same operators, parameters and column
# names — e.g. the same query registered twice) resolve to one shared entry.
# Unknown operator types fall back to a per-instance key: still persistent
# across runs of the owning view, never shared (safe by construction).

def _sig_core(op: XatOperator) -> tuple:
    if isinstance(op, Source):
        return ("S", op.document, op.out)
    if isinstance(op, NavigateUnnest):
        return ("phi", op.col, str(op.path), op.out, op.keep_empty)
    if isinstance(op, NavigateCollection):
        return ("Phi", op.col, str(op.path), op.out)
    if isinstance(op, Select):
        return ("sigma", str(op.condition))
    if isinstance(op, Rename):
        return ("rho", op.col, op.out)
    if isinstance(op, Join):
        return ("join", str(op.condition))
    if isinstance(op, LeftOuterJoin):
        return ("loj", str(op.condition))
    if isinstance(op, CartesianProduct):
        return ("x",)
    if isinstance(op, Distinct):
        return ("distinct", op.col)
    if isinstance(op, OrderBy):
        return ("tau",) + op.cols
    if isinstance(op, GroupBy):
        return ("gamma", op.group_cols, op.combine_col, op.agg)
    if isinstance(op, Aggregate):
        return ("agg", op.kind, op.col, op.out)
    if isinstance(op, TupleFunction):
        return ("f", op.kind, op.col, op.out)
    if isinstance(op, Combine):
        return ("C", op.col)
    if isinstance(op, Tagger):
        return ("T", str(op.pattern), op.out)
    if isinstance(op, XmlUnion):
        return ("U", op.col1, op.col2, op.out)
    if isinstance(op, XmlUnique):
        return ("u", op.col, op.out)
    if isinstance(op, Merge):
        return ("M",)
    if isinstance(op, Expose):
        return ("eps", op.col)
    return ("op", type(op).__name__, op.op_id)  # unshared fallback


def subplan_signature(op: XatOperator) -> str:
    """Canonical structural signature of a subplan (memoized per op)."""
    cached = getattr(op, "_state_signature", None)
    if cached is None:
        parts = [repr(_sig_core(op))]
        parts.extend(subplan_signature(child) for child in op.inputs)
        cached = "(" + " ".join(parts) + ")"
        op._state_signature = cached
    return cached


def _cacheable(op: XatOperator) -> bool:
    """Only storage-determined subplans may persist (no correlation)."""
    cached = getattr(op, "_state_cacheable", None)
    if cached is None:
        cached = (not isinstance(op, (Map, VariableBinding))
                  and all(_cacheable(child) for child in op.inputs))
        op._state_cacheable = cached
    return cached


def anti_projectable(op: XatOperator) -> bool:
    """Whether ANTI mode equals root-coverage filtering of the FULL table.

    Requires every operator of the subtree to be per-tuple linear: each
    output tuple's cells carry all the storage keys its existence (and
    content) depends on.  Distinct/GroupBy counts, outer-join dangling
    tuples and constructed skeletons break that, so they fall back to
    live ANTI execution.
    """
    cached = getattr(op, "_state_anti_projectable", None)
    if cached is None:
        own = op.anti_projectable
        if isinstance(op, NavigateUnnest):
            own = own and not op.keep_empty
        cached = own and all(anti_projectable(child) for child in op.inputs)
        op._state_anti_projectable = cached
    return cached


def _item_covered(item: Item, spec: DeltaSpec) -> bool:
    """Is this item's storage provenance at/below one of the update roots?"""
    if isinstance(item, NodeItem):
        return spec.classify(item.key.without_override()) == "at"
    if isinstance(item, AtomicItem) and item.source_key is not None:
        return spec.classify(item.source_key.without_override()) == "at"
    return False


def _project_tuple(tup: XatTuple,
                   spec: DeltaSpec) -> Optional[XatTuple]:
    """One tuple's ANTI form: ``None`` when a scalar cell is covered by
    an update root (the tuple would not exist), else the tuple with
    root-covered members filtered out of its collection cells."""
    new_cells = None
    for col, cell in tup.cells.items():
        if cell is None:
            continue
        if isinstance(cell, list):
            kept = [item for item in cell
                    if not _item_covered(item, spec)]
            if len(kept) != len(cell):
                if new_cells is None:
                    new_cells = dict(tup.cells)
                new_cells[col] = kept
        elif _item_covered(cell, spec):
            return None
    if new_cells is None:
        return tup
    return XatTuple(new_cells, tup.count, tup.refresh, tup.touched)


def project_anti(table: XatTable, spec: DeltaSpec, schema) -> XatTable:
    """ANTI view of a current-state table: drop root-covered tuples and
    filter root-covered members out of collection cells."""
    out = XatTable(schema)
    for tup in table.tuples:
        projected = _project_tuple(tup, spec)
        if projected is not None:
            out.append(projected)
    return out


# The one equi-key hash definition: store index entries must stay
# bit-compatible with the keys _BinaryJoinBase computes for its delta
# tuples, so both sides share relational's implementation.  A tuple
# hashes under one key per distinct value of a multi-item key cell
# (existential semantics), so it may live in several buckets at once.
_probe_keys = _hash_keys


# -- patch plans -------------------------------------------------------------------------

@dataclass
class _PlannedOp:
    verb: str                     # "insert" | "replace" | "remove"
    fingerprint: tuple
    new_tuple: Optional[XatTuple]
    # per index-columns probe-key *lists* of the affected tuples,
    # precomputed while storage is alive (delete patches commit after
    # the deletion); multi-item key cells hash under several keys
    keys: dict = field(default_factory=dict)


class _PatchPlan:
    """A staged table patch: validated against the entry, committed later.

    Two-phase so that a delete-phase serve can compute the post-delete
    state *during* the run (while the doomed subtrees are still readable)
    and commit it when the deferred storage deletions actually happen.
    """

    def __init__(self, spec: DeltaSpec, unstageable: bool = False):
        self.spec = spec
        self.root_values = frozenset(r.key.value for r in spec.roots)
        self.ops: list[_PlannedOp] = []
        self.applied = False
        #: the delta could not be validated against the entry — the plan
        #: is a tombstone that invalidates the entry when its deletions
        #: arrive instead of patching it
        self.unstageable = unstageable

    def covers(self, key) -> bool:
        return self.spec.classify(key) == "at"

    def same_batch(self, spec: DeltaSpec) -> bool:
        """Whether ``spec`` names the batch this plan was staged for —
        compared by content, since every view's propagation pass builds
        its own spec object for the same closed run."""
        return (self.spec is spec
                or (self.spec.document == spec.document
                    and self.spec.phase == spec.phase
                    and self.root_values
                    == frozenset(r.key.value for r in spec.roots)))

    def add_keys_for(self, cols, entry: "CachedEntry", ctx) -> None:
        """Precompute probe keys for a newly-built index (storage alive)."""
        for planned in self.ops:
            if cols in planned.keys:
                continue
            old = entry.fingerprints.get(planned.fingerprint)
            old_keys = (_probe_keys(old, cols, ctx)
                        if old is not None else [])
            new_keys = (_probe_keys(planned.new_tuple, cols, ctx)
                        if planned.new_tuple is not None else [])
            planned.keys[cols] = (old_keys, new_keys)


# -- one cached subplan ------------------------------------------------------------------

class CachedEntry:
    """One persisted FULL-mode table (plus side indexes) of a subplan."""

    #: stale-mutation backlog beyond which we stop tracking and invalidate
    MAX_STALE = 64

    def __init__(self, signature: str, op: XatOperator):
        self.signature = signature
        self.op = op
        self.stats = StoreStats()   # this signature's share of the store's
        self.docs = op.source_documents()
        self.sapt = Sapt.from_plan(op)
        self.schema = op.schema
        self.table: Optional[XatTable] = None
        self.fingerprints: dict = {}           # fingerprint -> tuple
        self._fp_of: dict = {}                 # id(tuple) -> fingerprint
        self._pos: dict = {}                   # id(tuple) -> table position
        self.indexes: dict = {}                # cols -> {probe key: [tuples]}
        # id(tuple) -> {cols: keys it is indexed under}.  Removal must use
        # the keys recorded at insertion: recomputing them against current
        # storage is wrong whenever the values changed since (a modify
        # patch removes the old tuple *after* the text was replaced).
        self._indexed_keys: dict = {}
        self.stale: list = []                  # [(kind, FlexKey)]
        self.valid = False
        self.prepared: Optional[_PatchPlan] = None

    # -- population ----------------------------------------------------------------------

    def populate(self, table: XatTable, ctx) -> bool:
        """Adopt a freshly-computed FULL table (fingerprint-folded copy).

        Value-identical tuples fold into one tuple with summed counts —
        the semantic-id discipline already treats them as one derivation
        group, and folding is what makes later count patches exact.
        """
        self.table = XatTable(self.schema)
        self.fingerprints.clear()
        self._fp_of.clear()
        self._pos.clear()
        self.indexes.clear()
        self._indexed_keys.clear()
        self.stale.clear()
        self.prepared = None
        op = self.op
        for tup in table.tuples:
            fp = op.state_merge_key(tup, ctx)
            existing = self.fingerprints.get(fp)
            if existing is None:
                self._add(fp, XatTuple(dict(tup.cells), tup.count,
                                       False, False))
            else:
                existing.count += tup.count
        self.valid = True
        return True

    # -- table/index primitives ----------------------------------------------------------

    def _add(self, fp, tup: XatTuple, keys: Optional[dict] = None,
             ctx=None) -> None:
        self.fingerprints[fp] = tup
        self._fp_of[id(tup)] = fp
        self._pos[id(tup)] = len(self.table.tuples)
        self.table.tuples.append(tup)
        for cols, index in self.indexes.items():
            tup_keys = self._keys_for(tup, cols, keys, ctx, new=True)
            self._indexed_keys.setdefault(id(tup), {})[cols] = tup_keys
            for key in tup_keys:
                index.setdefault(key, []).append(tup)

    def _remove(self, fp, keys: Optional[dict] = None, ctx=None) -> None:
        tup = self.fingerprints.pop(fp)
        self._fp_of.pop(id(tup))
        pos = self._pos.pop(id(tup))
        tuples = self.table.tuples
        last = tuples.pop()
        if last is not tup:           # swap-remove: tables are bags
            tuples[pos] = last
            self._pos[id(last)] = pos
        recorded = self._indexed_keys.pop(id(tup), None)
        for cols, index in self.indexes.items():
            if recorded is not None and cols in recorded:
                tup_keys = recorded[cols]
            else:
                tup_keys = self._keys_for(tup, cols, keys, ctx, new=False)
            for key in tup_keys:
                bucket = index.get(key)
                if bucket is not None:
                    try:
                        bucket.remove(tup)
                    except ValueError:
                        pass
                    if not bucket:
                        del index[key]

    def _replace(self, fp, new_tup: XatTuple,
                 keys: Optional[dict] = None, ctx=None) -> None:
        self._remove(fp, keys, ctx)
        self._add(fp, new_tup, keys, ctx)

    def _keys_for(self, tup, cols, keys, ctx, new: bool) -> list:
        if keys is not None and cols in keys:
            old_keys, new_keys = keys[cols]
            return new_keys if new else old_keys
        if ctx is None:
            return []
        return _probe_keys(tup, cols, ctx)

    def index_for(self, cols: tuple, ctx) -> dict:
        """The persistent equi-key index over the cached table."""
        index = self.indexes.get(cols)
        if index is None:
            index = {}
            for tup in self.table.tuples:
                tup_keys = _probe_keys(tup, cols, ctx)
                self._indexed_keys.setdefault(id(tup), {})[cols] = tup_keys
                for key in tup_keys:
                    index.setdefault(key, []).append(tup)
            self.indexes[cols] = index
            if self.prepared is not None:
                # A staged delete patch must learn this index's keys while
                # the doomed subtrees are still readable.
                self.prepared.add_keys_for(cols, self, ctx)
        return index

    def fingerprint_of(self, tup: XatTuple):
        return self._fp_of.get(id(tup))

    # -- delta patching ------------------------------------------------------------------

    def stage(self, delta: XatTable, spec: DeltaSpec,
              ctx) -> Optional[_PatchPlan]:
        """Validate a delta against the entry; None when it cannot apply.

        The plan is computed against an overlay (pending verbs win over
        committed state) so several delta tuples hitting one fingerprint
        compose; nothing is mutated until :meth:`commit`.
        """
        plan = _PatchPlan(spec)
        pending: dict = {}
        op = self.op
        cols_list = list(self.indexes)
        for dt in delta.tuples:
            if dt.count == 0 and not dt.refresh:
                continue
            fp = op.state_merge_key(dt, ctx)
            planned = pending.get(fp)
            if planned is not None and planned.verb != "remove":
                existing = planned.new_tuple
            elif planned is not None:
                existing = None
            else:
                existing = self.fingerprints.get(fp)
            verb, new_tup = op.state_apply(existing, dt, ctx)
            if verb == "fail":
                return None
            if verb == "noop":
                continue
            base_exists = fp in self.fingerprints
            if planned is None:
                planned = _PlannedOp(verb, fp, new_tup)
                pending[fp] = planned
                plan.ops.append(planned)
            else:
                planned.new_tuple = new_tup
                planned.verb = verb
            # Normalize the verb against the *committed* state.
            if planned.verb == "insert" and base_exists:
                planned.verb = "replace"
            elif planned.verb == "replace" and not base_exists:
                planned.verb = "insert"
            elif planned.verb == "remove" and not base_exists:
                planned.verb = "drop"   # inserted and removed within plan
        plan.ops = [p for p in plan.ops if p.verb != "drop"]
        for cols in cols_list:
            plan.add_keys_for(cols, self, ctx)
        return plan

    def commit(self, plan: _PatchPlan, ctx=None) -> None:
        for planned in plan.ops:
            if planned.verb == "insert":
                self._add(planned.fingerprint, planned.new_tuple,
                          planned.keys, ctx)
            elif planned.verb == "replace":
                self._replace(planned.fingerprint, planned.new_tuple,
                              planned.keys, ctx)
            else:  # remove
                self._remove(planned.fingerprint, planned.keys, ctx)
        plan.applied = True

    # -- invalidation --------------------------------------------------------------------

    def invalidate(self) -> None:
        self.valid = False
        self.table = None
        self.fingerprints.clear()
        self._fp_of.clear()
        self._pos.clear()
        self.indexes.clear()
        self._indexed_keys.clear()
        self.stale.clear()
        self.prepared = None

    def stale_covered_by(self, spec: DeltaSpec) -> bool:
        return all(kind == spec.phase and spec.classify(key) == "at"
                   for kind, key in self.stale)

    def drop_stale_prepared(self, spec: DeltaSpec) -> None:
        """Expire a staged delete patch belonging to an earlier batch.

        Unapplied means its deletions never arrived — storage is
        unchanged and the table still mirrors it; applied means it is
        spent.  Either way it must not keep absorbing deletion events
        (a reclaimed sibling atom may coincide with an old root key).
        Batch identity is by content, not object: each view's pass
        builds its own DeltaSpec for the same run, and re-staging a
        shared entry once per view would cost O(views) delta passes.
        """
        if self.prepared is not None \
                and not self.prepared.same_batch(spec):
            self.prepared = None

    def on_mutation(self, kind: str, key, tags: tuple,
                    document: str) -> None:
        """One storage mutation on a document this entry sources."""
        if not self.valid:
            return
        if self.prepared is not None and kind == DELETE \
                and self.prepared.covers(key):
            # The deferred deletions this entry's staged patch was
            # computed for: commit once, absorb the remaining events.
            if self.prepared.unstageable:
                self.invalidate()
            elif not self.prepared.applied:
                self.commit(self.prepared)
            return
        if not self.sapt.relevant_for_tags(document, tags):
            return  # unrelated traffic leaves warm state warm
        if kind == DELETE or len(self.stale) >= self.MAX_STALE:
            # Deletion events arrive after the subtree is gone — too late
            # to derive a delta.  Recompute lazily on next use.
            self.invalidate()
            return
        for _kind, stale_key in self.stale:
            if (stale_key == key or stale_key.is_ancestor_of(key)
                    or key.is_ancestor_of(stale_key)):
                # A second mutation on the same subtree: the stale list
                # cannot tell whether the events belong to one batch or
                # to two (a batch may be absorbed by a recompute-flush
                # or routed to no view, so no reconcile separates
                # windows).  A later spec with coinciding roots would
                # pass stale_covered_by yet its delta only describes
                # the newer change — patch silently loses the older
                # one.  Indistinguishable means unpatchable: recompute.
                self.invalidate()
                return
        self.stale.append((kind, key))


# -- probe handles -----------------------------------------------------------------------

class StoredSideHandle:
    """Probe/scan access to a join side served from the persistent store."""

    def __init__(self, store: "OperatorStateStore", entry: CachedEntry,
                 ctx, mode: str, cols: Optional[tuple]):
        self._store = store
        self._entry = entry
        self._ctx = ctx
        self._mode = mode
        self.cols = cols
        self._anti_table: Optional[XatTable] = None
        # id(cached tuple) -> (projection, its probe keys), memoized so
        # repeated probes hand back the *same* object per underlying
        # tuple — consumers (the LOJ dangling corrections) dedupe
        # matches by identity — and pay the projection plus its key
        # computation once, not per probe.
        self._projections: dict[int, tuple] = {}

    def probe(self, key) -> list:
        if key is None:
            return []
        bucket = self._entry.index_for(self.cols, self._ctx).get(key)
        if not bucket:
            return []
        if self._mode != ANTI:
            return list(bucket)
        # Same transform as project_anti, per bucket tuple: a covered
        # scalar cell drops the tuple, covered collection *members* are
        # filtered out — and when the filtering touched an equi-key cell
        # the tuple no longer hashes under the probed key, so it cannot
        # match there.
        spec = self._ctx.delta
        kept = []
        for tup in bucket:
            marker = id(tup)
            cached = self._projections.get(marker)
            if cached is None:
                projected = _project_tuple(tup, spec)
                keys = (None if projected is None or projected is tup
                        else _probe_keys(projected, self.cols, self._ctx))
                cached = (projected, keys)
                self._projections[marker] = cached
            projected, keys = cached
            if projected is not None and (keys is None or key in keys):
                kept.append(projected)
        return kept

    def table(self) -> XatTable:
        if self._mode == FULL:
            return self._entry.table
        if self._anti_table is None:
            self._anti_table = project_anti(self._entry.table,
                                            self._ctx.delta,
                                            self._entry.schema)
        return self._anti_table


# -- the store ---------------------------------------------------------------------------

@dataclass
class StoreStats:
    """Cumulative serve/patch activity of one store."""

    hits: int = 0          # serves satisfied from cached state
    misses: int = 0        # serves that had to (re)compute the table
    patches: int = 0       # cached tables patched from a batch delta
    invalidations: int = 0  # entries dropped by the listener / fallback

    def snapshot(self) -> tuple:
        return (self.hits, self.misses, self.patches, self.invalidations)

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "patches": self.patches,
                "invalidations": self.invalidations}


class OperatorStateStore:
    """Cross-run operator state for the V-P-A pipeline (see module doc)."""

    def __init__(self, storage):
        self.storage = storage
        self.stats = StoreStats()
        self._entries: dict[str, CachedEntry] = {}
        self._by_doc: dict[str, list[CachedEntry]] = {}
        self._attached = False
        storage.add_mutation_listener(self._on_mutation)
        self._attached = True

    # -- lifecycle -----------------------------------------------------------------------

    def close(self) -> None:
        """Detach from the storage manager (idempotent)."""
        if self._attached:
            self.storage.remove_mutation_listener(self._on_mutation)
            self._attached = False

    def __enter__(self) -> "OperatorStateStore":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def adopt(self, tables: dict, plans: list) -> int:
        """Re-adopt checkpointed FULL tables after recovery.

        ``tables`` maps subplan signatures to :class:`XatTable`\\ s
        captured at checkpoint time; ``plans`` are the restored views'
        prepared plans (the checkpoint stores no operator objects, so
        signatures are re-derived from the live plans and matched).
        Restored storage mirrors the checkpointed storage exactly, so
        :meth:`CachedEntry.populate` recomputes identical fingerprints.
        Adoption is best-effort — the store is a pure performance layer,
        so an entry that fails to populate is simply skipped.
        """
        from ..xat.base import ExecutionContext

        adopted = 0
        ctx = ExecutionContext(self.storage)
        for plan in plans:
            stack = [plan]
            while stack:
                op = stack.pop()
                stack.extend(op.inputs)
                if not _cacheable(op):
                    continue
                signature = subplan_signature(op)
                table = tables.get(signature)
                if table is None or signature in self._entries:
                    continue
                entry = CachedEntry(signature, op)
                try:
                    entry.populate(table, ctx)
                except Exception:
                    continue
                self._entries[signature] = entry
                for document in entry.docs:
                    self._by_doc.setdefault(document, []).append(entry)
                adopted += 1
        return adopted

    def invalidate_all(self) -> None:
        """Drop every cached table (they rebuild lazily on next use)."""
        for entry in self._entries.values():
            if entry.valid:
                entry.invalidate()
                self.stats.invalidations += 1
                entry.stats.invalidations += 1

    def entry_count(self) -> int:
        return len(self._entries)

    def entries(self):
        return list(self._entries.values())

    def per_signature(self) -> dict:
        """Serve statistics per cached-subplan signature — the live
        EXPLAIN and metric snapshots key on this to show which state
        store entries are thrashing (miss/invalidate churn) and which
        are pulling their weight (hit/patch ratio)."""
        out = {}
        for signature, entry in self._entries.items():
            stats = entry.stats.as_dict()
            stats["valid"] = entry.valid
            stats["rows"] = (len(entry.table.tuples)
                             if entry.valid and entry.table is not None
                             else None)
            stats["stale"] = len(entry.stale)
            stats["operator"] = type(entry.op).__name__
            out[signature] = stats
        return out

    # -- the mutation listener -----------------------------------------------------------

    def _on_mutation(self, kind: str, key, tags: tuple) -> None:
        try:
            document = self.storage.document_of_key(key)
        except KeyError:
            return
        for entry in self._by_doc.get(document, ()):
            was_valid = entry.valid
            entry.on_mutation(kind, key, tags, document)
            if was_valid and not entry.valid:
                self.stats.invalidations += 1
                entry.stats.invalidations += 1

    # -- serving -------------------------------------------------------------------------

    def serve(self, ctx, op: XatOperator, mode: str) -> Optional[XatTable]:
        """A FULL/ANTI table for ``op`` under ``ctx``'s delta run, served
        from persistent state; None when the store cannot serve it."""
        if mode == ANTI and not anti_projectable(op):
            return None
        entry = self._ensure_current(ctx, op)
        if entry is None:
            return None
        if mode == FULL:
            return entry.table
        return project_anti(entry.table, ctx.delta, entry.schema)

    def join_side(self, ctx, op: XatOperator, mode: str,
                  cols: Optional[tuple]) -> Optional[StoredSideHandle]:
        """A probe handle over a join side; None → caller falls back."""
        if cols is None:
            return None
        if mode == ANTI and not anti_projectable(op):
            return None
        entry = self._ensure_current(ctx, op)
        if entry is None:
            return None
        return StoredSideHandle(self, entry, ctx, mode, tuple(cols))

    def _ensure_current(self, ctx, op: XatOperator
                        ) -> Optional[CachedEntry]:
        if not _cacheable(op):
            return None
        spec = ctx.delta
        signature = subplan_signature(op)
        entry = self._entries.get(signature)
        if entry is None:
            entry = CachedEntry(signature, op)
            self._entries[signature] = entry
            for document in entry.docs:
                self._by_doc.setdefault(document, []).append(entry)
        entry.drop_stale_prepared(spec)
        if not entry.valid:
            self._recompute(ctx, op, entry)
        elif entry.stale:
            if entry.stale_covered_by(spec):
                delta = ctx.evaluate(op, DELTA)
                plan = entry.stage(delta, spec, ctx)
                if plan is not None:
                    entry.commit(plan, ctx)
                    entry.stale.clear()
                    self.stats.patches += 1
                    self.stats.hits += 1
                    entry.stats.patches += 1
                    entry.stats.hits += 1
                else:
                    entry.invalidate()
                    self.stats.invalidations += 1
                    entry.stats.invalidations += 1
                    self._recompute(ctx, op, entry)
            else:
                entry.invalidate()
                self.stats.invalidations += 1
                entry.stats.invalidations += 1
                self._recompute(ctx, op, entry)
        else:
            self.stats.hits += 1
            entry.stats.hits += 1
        if spec.phase == DELETE and spec.document in entry.docs \
                and entry.prepared is None:
            # Deletes reach storage only after propagation: stage the
            # post-delete state now, commit when the events arrive.
            delta = ctx.evaluate(op, DELTA)
            plan = entry.stage(delta, spec, ctx)
            if plan is None:
                # Unstageable: the deletion events invalidate the entry
                # instead of patching it (safe recompute fallback).
                plan = _PatchPlan(spec, unstageable=True)
            entry.prepared = plan
        return entry

    def _recompute(self, ctx, op: XatOperator, entry: CachedEntry) -> None:
        table = ctx.evaluate(op, FULL)
        entry.populate(table, ctx)
        self.stats.misses += 1
        entry.stats.misses += 1

    # -- end-of-pass reconciliation ------------------------------------------------------

    def reconcile(self, spec: DeltaSpec) -> None:
        """Bring every entry this batch touched current, served or not.

        A one-sided batch only *serves* the untouched side (the delta
        side's own entry never gets a FULL/ANTI request), so its stale
        entries would otherwise linger until an unrelated later batch
        finds them uncoverable and recomputes.  Called by the engine at
        the end of each delta pass — and, for delete batches, *before*
        the deferred deletions reach storage, so unserved entries can
        still stage their post-delete patch from the live subtrees.
        """
        from ..xat.base import ExecutionContext

        ctx = None
        for entry in list(self._by_doc.get(spec.document, ())):
            if not entry.valid:
                continue
            entry.drop_stale_prepared(spec)
            if spec.phase == DELETE:
                if entry.prepared is not None:
                    continue
                if not any(entry.sapt.relevant_for_tags(
                        spec.document, self.storage.tag_path(root.key))
                        for root in spec.roots):
                    continue  # the deletion events will be ignored anyway
                if ctx is None:
                    ctx = ExecutionContext(self.storage, mode=DELTA,
                                           delta=spec, store=self)
                delta = ctx.evaluate(entry.op, DELTA)
                plan = entry.stage(delta, spec, ctx)
                entry.prepared = (plan if plan is not None
                                  else _PatchPlan(spec, unstageable=True))
            elif entry.stale and entry.stale_covered_by(spec):
                if ctx is None:
                    ctx = ExecutionContext(self.storage, mode=DELTA,
                                           delta=spec, store=self)
                delta = ctx.evaluate(entry.op, DELTA)
                plan = entry.stage(delta, spec, ctx)
                if plan is not None:
                    entry.commit(plan, ctx)
                    entry.stale.clear()
                    self.stats.patches += 1
                    entry.stats.patches += 1
                else:
                    entry.invalidate()
                    self.stats.invalidations += 1
                    entry.stats.invalidations += 1
