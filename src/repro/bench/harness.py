"""Benchmark harness utilities: timing, sweeps, paper-style tables.

Every figure of the paper's evaluation has one module under
``benchmarks/``; each module exposes

* ``figure_rows()`` — the full parameter sweep, returning printable rows
  (the series the paper plots), and
* pytest(-benchmark) tests asserting the figure's *shape* (who wins, by
  roughly what factor) at a small scale.

Scales are chosen for laptop/CI budgets; set ``REPRO_BENCH_SCALE`` to a
comma-separated list of person counts to sweep larger documents.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Iterable, Sequence


def scales(default: Sequence[int] = (50, 100, 200, 400)) -> list[int]:
    """Document scales (number of persons) for sweeps."""
    env = os.environ.get("REPRO_BENCH_SCALE")
    if env:
        return [int(part) for part in env.split(",") if part.strip()]
    return list(default)


def time_call(fn: Callable[[], object], repeat: int = 3) -> float:
    """Best-of-``repeat`` wall-clock seconds for ``fn()``."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def ms(seconds: float) -> str:
    return f"{seconds * 1000.0:9.2f}"


#: Every table printed by :func:`print_table`, in order — the benchmark
#: scripts' shared ``--json PATH`` flag persists this record so each
#: figure module emits machine-readable results alongside its console
#: tables.
_RECORDED_TABLES: list[dict] = []


def print_table(title: str, headers: Sequence[str],
                rows: Iterable[Sequence[object]]) -> None:
    """Print one paper-style series table (and record it for JSON output)."""
    rows = [list(row) for row in rows]
    _RECORDED_TABLES.append({
        "title": title,
        "headers": list(headers),
        "rows": [[str(cell).strip() for cell in row] for row in rows],
    })
    print()
    print(f"== {title} ==")
    widths = [max(12, len(h) + 2) for h in headers]
    print("".join(h.rjust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("".join(str(cell).rjust(w) for cell, w in zip(row, widths)))


def recorded_tables() -> list[dict]:
    """All tables printed so far (title/headers/rows dicts)."""
    return list(_RECORDED_TABLES)


def reset_recorded_tables() -> None:
    _RECORDED_TABLES.clear()


def ratio(part: float, total: float) -> str:
    if total <= 0:
        return "n/a"
    return f"{100.0 * part / total:6.1f}%"
