"""Engine-state serialization for checkpoints: capture and restore.

What a checkpoint holds, and why it restores *cheaply*:

* **documents** — the live :class:`~repro.xmlmodel.XmlDocument` trees,
  pickled with every node's FlexKey attached.  Keys must survive the
  round trip verbatim: WAL-tail records address nodes by key, and
  re-registering from XML text would relabel inserted nodes
  (``sibling_atom(index)`` ≠ the ``atom_for_insert`` keys they got
  live).  :meth:`StorageManager.restore_document` re-adopts the trees
  without reassigning anything.
* **the StructuralIndex** — pickled directly (plain dicts of sorted key
  strings), so restore skips the per-node ``insort`` rebuild.
* **view extents** — each registered view's materialized
  :class:`~repro.apply.ExtentNode` tree plus its policy, cost-model
  calibration and refresh sequence, so restore *grafts* extents instead
  of rematerializing every view (the reason checkpoint restore beats a
  cold start by construction).
* **operator state** — the clean :class:`CachedEntry` FULL tables by
  subplan signature.  Cells reference storage by FlexKey only, so the
  tables pickle independently of the node graph; on restore the store
  re-adopts them via :meth:`CachedEntry.populate` (fingerprints are
  recomputed against the restored storage, which mirrors the
  checkpointed one exactly).  Adoption is belt-and-braces guarded: the
  cache is a pure performance layer, dropping an entry never affects
  correctness.

Views registered from raw :class:`XatOperator` plans (no query text)
cannot be serialized — the durable facade requires query strings.
"""

from __future__ import annotations

from ..multiview.policies import MaintenancePolicy

__all__ = ["SNAPSHOT_FORMAT", "capture_state", "restore_state"]

SNAPSHOT_FORMAT = 1


def capture_state(registry) -> dict:
    """One picklable dict of the registry's whole durable state.

    Flushes every view first: checkpoints are cut at a quiescent point
    so no pending delta queues need serializing, and the extents on disk
    match a clean replay boundary.
    """
    registry.flush(None)
    storage = registry.storage
    views = []
    for name in registry.names():
        view = registry.view(name)
        if not view.query_text:
            raise ValueError(
                f"view {name!r} was registered from a raw plan; durable "
                f"registries require views registered from query strings")
        views.append({
            "name": name,
            "query": view.query_text,
            "policy_kind": view.policy.kind,
            "policy_threshold": view.policy.threshold,
            "extent": view.pipeline.extent,
            "materialized": view.pipeline.materialized,
            "refresh_sequence": view.refresh_sequence,
            "recompute_seconds": view.cost.recompute_seconds,
            "per_tree_seconds": view.cost.per_tree_seconds,
        })
    opstate = {}
    store = registry.state_store
    if store is not None:
        for entry in store.entries():
            # A stale backlog means the table lags storage — skip.  A
            # leftover ``prepared`` plan does not: applied it is spent,
            # unapplied its deletions never arrived (the registry is
            # quiesced before capture), so the table mirrors storage
            # either way and the plan itself is simply not persisted.
            if entry.valid and not entry.stale and entry.table is not None:
                opstate[entry.signature] = entry.table
    return {
        "format": SNAPSHOT_FORMAT,
        "documents": dict(storage._documents),
        "roots": dict(storage._roots),
        "index": storage.index,
        "views": views,
        "opstate": opstate,
    }


def restore_state(registry, state: dict) -> None:
    """Rebuild a freshly-constructed registry (empty storage, no views)
    from a captured state dict."""
    if state.get("format") != SNAPSHOT_FORMAT:
        raise ValueError(
            f"unsupported snapshot format {state.get('format')!r}")
    storage = registry.storage
    storage._index = state["index"]
    for name, document in state["documents"].items():
        storage.restore_document(document, state["roots"][name])
    for spec in state["views"]:
        policy = MaintenancePolicy(spec["policy_kind"],
                                   spec["policy_threshold"])
        view = registry.register(spec["name"], spec["query"],
                                 policy=policy, materialize=False)
        view.pipeline.extent = spec["extent"]
        view.pipeline.materialized = spec["materialized"]
        view.refresh_sequence = spec["refresh_sequence"]
        if spec["recompute_seconds"] is not None:
            view.cost.recompute_seconds = spec["recompute_seconds"]
        if spec["per_tree_seconds"] is not None:
            view.cost.per_tree_seconds = spec["per_tree_seconds"]
    store = registry.state_store
    if store is not None and state["opstate"]:
        plans = [registry.view(name).pipeline.plan
                 for name in registry.names()]
        store.adopt(state["opstate"], plans)
