"""The injectable file layer under the durability subsystem.

Every byte the WAL and checkpoint store touch goes through a
:class:`FileSystem` instance, so the fault-injection harness
(``tests/faults.py``) can interpose torn writes, short reads, fsync
failures and kill-at-LSN crash points without monkeypatching ``os`` —
the same seam a real storage engine keeps between its log manager and
the kernel.  :class:`RealFileSystem` is the default pass-through.
"""

from __future__ import annotations

import os

__all__ = ["FileSystem", "RealFileSystem"]


class FileSystem:
    """Abstract file operations used by the WAL and checkpoint store."""

    def open(self, path: str, mode: str):
        raise NotImplementedError

    def fsync(self, fileobj) -> None:
        raise NotImplementedError

    def fsync_dir(self, path: str) -> None:
        """Flush a directory entry (after an atomic rename into it)."""
        raise NotImplementedError

    def replace(self, src: str, dst: str) -> None:
        raise NotImplementedError

    def listdir(self, path: str) -> list[str]:
        raise NotImplementedError

    def exists(self, path: str) -> bool:
        raise NotImplementedError

    def makedirs(self, path: str) -> None:
        raise NotImplementedError

    def remove(self, path: str) -> None:
        raise NotImplementedError

    def size(self, path: str) -> int:
        raise NotImplementedError


class RealFileSystem(FileSystem):
    """The production file layer: straight through to the OS."""

    def open(self, path: str, mode: str):
        return open(path, mode)

    def fsync(self, fileobj) -> None:
        fileobj.flush()
        os.fsync(fileobj.fileno())

    def fsync_dir(self, path: str) -> None:
        # Windows cannot open directories; durability there is best-effort.
        if os.name != "posix":
            return
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def replace(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    def listdir(self, path: str) -> list[str]:
        return os.listdir(path)

    def exists(self, path: str) -> bool:
        return os.path.exists(path)

    def makedirs(self, path: str) -> None:
        os.makedirs(path, exist_ok=True)

    def remove(self, path: str) -> None:
        os.remove(path)

    def size(self, path: str) -> int:
        return os.path.getsize(path)
