"""The write-ahead log: length-prefixed, CRC32-checksummed, LSN-stamped.

One record per durable event — a routed update batch, a document load,
or a view DDL change — encoded as a fixed 16-byte header
(``lsn:u64  length:u32  crc32:u32``, big-endian) followed by a UTF-8
JSON payload.  LSNs are monotone across the log's whole lifetime; the
log is split into *segments* named ``wal-<first-lsn>.log``, rolled at
every checkpoint so truncation is a whole-file delete, never an
in-place rewrite.

Torn-tail discipline: the reader stops at the first record whose header
is short, whose length runs past the file, or whose CRC fails — a crash
mid-append leaves exactly such a tail — and recovery truncates the
segment back to the last valid byte before appending resumes.  Reads go
through a short-read-tolerant loop so a partial ``read()`` (fault
injection, signal-interrupted IO) never masquerades as a torn record.

Fsync policy:

* ``"always"`` — fsync before :meth:`WriteAheadLog.append` returns; a
  batch acknowledged is a batch on disk.
* ``"batch"`` — flush every append (survives process death), fsync
  every ``sync_every`` records and at checkpoint/close (bounded loss on
  power failure).
* ``"off"`` — flush only; durability rides on the OS page cache.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field

from .files import FileSystem

__all__ = ["FSYNC_POLICIES", "WalStats", "WalTail", "WriteAheadLog",
           "read_segment", "segment_name"]

_HEADER = struct.Struct(">QII")
#: a length beyond this is treated as a torn/corrupt header, not honoured
MAX_RECORD_BYTES = 256 * 1024 * 1024

FSYNC_POLICIES = ("always", "batch", "off")

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"


def segment_name(start_lsn: int) -> str:
    return f"{_SEGMENT_PREFIX}{start_lsn:020d}{_SEGMENT_SUFFIX}"


def parse_segment_name(name: str) -> int | None:
    """The segment's first LSN, or None when ``name`` is not a segment."""
    if not (name.startswith(_SEGMENT_PREFIX)
            and name.endswith(_SEGMENT_SUFFIX)):
        return None
    digits = name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
    return int(digits) if digits.isdigit() else None


def encode_record(lsn: int, payload: dict) -> bytes:
    data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return _HEADER.pack(lsn, len(data), zlib.crc32(data)) + data


def _read_exact(fileobj, count: int) -> bytes:
    """Read exactly ``count`` bytes unless EOF intervenes (short reads
    from the file layer are looped over, not trusted)."""
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = fileobj.read(remaining)
        if not chunk:
            break
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_segment(fs: FileSystem, path: str
                 ) -> tuple[list[tuple[int, dict]], int, int]:
    """Decode one segment: ``(records, valid_bytes, file_bytes)``.

    ``records`` is ``[(lsn, payload), ...]`` up to (not including) the
    first torn or corrupt record; ``valid_bytes`` is the byte offset of
    that cut, ``file_bytes`` the segment's full length — they differ
    exactly when a torn tail must be truncated away.
    """
    records: list[tuple[int, dict]] = []
    valid = 0
    file_bytes = fs.size(path)
    with fs.open(path, "rb") as fh:
        while True:
            header = _read_exact(fh, _HEADER.size)
            if len(header) < _HEADER.size:
                break
            lsn, length, crc = _HEADER.unpack(header)
            if length > MAX_RECORD_BYTES:
                break
            data = _read_exact(fh, length)
            if len(data) < length or zlib.crc32(data) != crc:
                break
            try:
                payload = json.loads(data.decode("utf-8"))
            except ValueError:
                break
            records.append((lsn, payload))
            valid += _HEADER.size + length
    return records, valid, file_bytes


@dataclass
class WalStats:
    """Cumulative append-side activity of one log."""

    records_appended: int = 0
    bytes_appended: int = 0
    fsyncs: int = 0


@dataclass
class WalTail:
    """What :meth:`WriteAheadLog.recover` found past a checkpoint."""

    records: list = field(default_factory=list)   # [(lsn, payload)]
    bytes_scanned: int = 0
    torn_records_discarded: int = 0


class WriteAheadLog:
    """Segment-rolling WAL over an injectable :class:`FileSystem`."""

    def __init__(self, fs: FileSystem, directory: str,
                 fsync: str = "batch", sync_every: int = 8):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"unknown fsync policy {fsync!r} "
                             f"(expected one of {FSYNC_POLICIES})")
        self._fs = fs
        self.directory = directory
        self.fsync_policy = fsync
        self.sync_every = max(1, sync_every)
        self.stats = WalStats()
        self.next_lsn = 1
        self._file = None
        self._unsynced = 0

    @property
    def last_lsn(self) -> int:
        return self.next_lsn - 1

    def segments(self) -> list[tuple[int, str]]:
        """``(first_lsn, path)`` of every segment, oldest first."""
        out = []
        for name in self._fs.listdir(self.directory):
            start = parse_segment_name(name)
            if start is not None:
                out.append((start, f"{self.directory}/{name}"))
        out.sort()
        return out

    # -- recovery ----------------------------------------------------------------------

    def recover(self, after_lsn: int) -> WalTail:
        """Read the tail past ``after_lsn``, truncate any torn suffix,
        and position the log for appending.

        A torn record inside a segment cuts the replayable tail there:
        the segment is truncated back to its last valid byte and every
        later segment (written after the corruption point, so not safely
        ordered against it) is dropped.
        """
        tail = WalTail()
        segments = self.segments()
        max_lsn = after_lsn
        for index, (_start, path) in enumerate(segments):
            records, valid, file_bytes = read_segment(self._fs, path)
            tail.bytes_scanned += valid
            for lsn, payload in records:
                if lsn > max_lsn:
                    max_lsn = lsn
                if lsn > after_lsn:
                    tail.records.append((lsn, payload))
            if valid < file_bytes:
                tail.torn_records_discarded += 1
                with self._fs.open(path, "r+b") as fh:
                    fh.truncate(valid)
                for _s, stale_path in segments[index + 1:]:
                    tail.torn_records_discarded += 1
                    self._fs.remove(stale_path)
                segments = segments[:index + 1]
                break
        self.next_lsn = max_lsn + 1
        self.close()
        if segments:
            self._file = self._fs.open(segments[-1][1], "ab")
        else:
            self.start_segment(self.next_lsn)
        return tail

    # -- appending ---------------------------------------------------------------------

    def append(self, payload: dict) -> int:
        """Durably append one record; returns its LSN.  The write is
        flushed (and fsynced per policy) before this returns, so callers
        may mutate in-memory state immediately after."""
        if self._file is None:
            self.start_segment(self.next_lsn)
        lsn = self.next_lsn
        record = encode_record(lsn, payload)
        self._file.write(record)
        self.next_lsn = lsn + 1
        self.stats.records_appended += 1
        self.stats.bytes_appended += len(record)
        if self.fsync_policy == "always":
            self._fs.fsync(self._file)
            self.stats.fsyncs += 1
        else:
            self._file.flush()
            if self.fsync_policy == "batch":
                self._unsynced += 1
                if self._unsynced >= self.sync_every:
                    self.sync()
        return lsn

    def sync(self) -> None:
        """Force an fsync of the active segment (no-op when policy is
        ``off`` — the caller opted out of durability guarantees)."""
        if self._file is None or self.fsync_policy == "off":
            return
        self._fs.fsync(self._file)
        self.stats.fsyncs += 1
        self._unsynced = 0

    # -- segment management ------------------------------------------------------------

    def start_segment(self, start_lsn: int) -> None:
        """Roll to a fresh segment whose first record will be
        ``start_lsn`` (the checkpoint boundary)."""
        self.close()
        path = f"{self.directory}/{segment_name(start_lsn)}"
        self._file = self._fs.open(path, "ab")
        self._fs.fsync_dir(self.directory)

    def drop_segments_before(self, keep_from_lsn: int) -> int:
        """Delete segments that cannot contain any record with
        ``lsn >= keep_from_lsn`` — a segment is droppable when its
        *successor* starts at or before that bound (so all its records
        precede it).  Returns how many were deleted."""
        segments = self.segments()
        dropped = 0
        for index, (_start, path) in enumerate(segments):
            if index + 1 < len(segments) \
                    and segments[index + 1][0] <= keep_from_lsn:
                self._fs.remove(path)
                dropped += 1
        return dropped

    def close(self) -> None:
        if self._file is not None:
            try:
                self.sync()
            finally:
                self._file.close()
                self._file = None
