"""Durability subsystem: write-ahead log, checkpoints, crash recovery.

``Database(durable_path=...)`` is the user-facing entry point; the
pieces compose bottom-up:

* :mod:`~repro.durability.files` — the injectable file layer (the
  fault-injection seam);
* :mod:`~repro.durability.wal` — length-prefixed CRC32 records with
  monotone LSNs in checkpoint-rolled segments;
* :mod:`~repro.durability.checkpoint` — atomic, verified, generational
  snapshots;
* :mod:`~repro.durability.snapshot` — what a snapshot contains
  (documents with their FlexKeys, the StructuralIndex, view extents,
  operator-state tables);
* :mod:`~repro.durability.manager` — the orchestrator a
  :class:`~repro.multiview.ViewRegistry` binds to.
"""

from .checkpoint import CheckpointError, CheckpointStore
from .files import FileSystem, RealFileSystem
from .manager import DurabilityManager, RecoveryReport
from .wal import FSYNC_POLICIES, WriteAheadLog, read_segment

__all__ = [
    "CheckpointError",
    "CheckpointStore",
    "DurabilityManager",
    "FSYNC_POLICIES",
    "FileSystem",
    "RealFileSystem",
    "RecoveryReport",
    "WriteAheadLog",
    "read_segment",
]
