"""DurabilityManager: WAL + checkpoints + recovery over one ViewRegistry.

The manager owns one durable directory holding WAL segments and
checkpoint generations, and binds to a :class:`ViewRegistry` as its
``wal`` attribute — the registry then calls :meth:`log_batch` at the
top of :meth:`ViewRegistry.apply_updates` (before any mutation, so a
batch is atomic-on-disk or not applied at all), :meth:`log_create_view`
/ :meth:`log_drop_view` on DDL, and :meth:`maybe_checkpoint` after each
applied stream.  Document loads are logged by the API facade via
:meth:`log_load`.

Recovery (:meth:`recover`) is the inverse: load the newest checkpoint
that verifies (falling back one generation on corruption), graft it
into the fresh registry, then replay the WAL tail **through the normal
router/pipeline** — FlexKey assignment is deterministic given storage
state, so replayed batches reproduce the exact keys the live run
assigned, and later records keep addressing valid targets.  A batch
that failed mid-apply before the crash fails identically on replay
(same partial storage application), so recovery converges on the
pre-crash state rather than diverging from it.  Torn trailing records
are truncated away, never fatal.
"""

from __future__ import annotations

import contextlib
import os
import time
from dataclasses import dataclass

from ..flexkeys import FlexKey
from ..multiview.policies import MaintenancePolicy
from ..updates.primitives import UpdateRequest
from ..xmlmodel import XmlDocument, parse_fragment, serialize
from .checkpoint import CheckpointStore
from .files import FileSystem, RealFileSystem
from .snapshot import capture_state, restore_state
from .wal import FSYNC_POLICIES, WriteAheadLog

__all__ = ["DurabilityManager", "RecoveryReport"]


def _encode_request(request: UpdateRequest) -> dict:
    return {"k": request.kind, "d": request.document,
            "t": request.target.value, "p": request.position,
            "v": request.new_value,
            "f": (serialize(request.fragment)
                  if request.fragment is not None else None)}


def _decode_request(data: dict) -> UpdateRequest:
    fragment = None
    if data["f"] is not None:
        fragment = parse_fragment(data["f"])[0]
    return UpdateRequest(data["k"], data["d"], FlexKey.parse(data["t"]),
                         fragment=fragment, position=data["p"],
                         new_value=data["v"])


@dataclass
class RecoveryReport:
    """What one :meth:`DurabilityManager.recover` pass did."""

    checkpoint_lsn: int = 0
    checkpoint_generation: int = 0   # 0 = newest verified; >0 = fallback
    wal_records_replayed: int = 0
    wal_bytes: int = 0
    torn_records_discarded: int = 0
    replay_errors: int = 0           # batches that re-failed on replay
    recovery_seconds: float = 0.0
    documents: int = 0
    views: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class DurabilityManager:
    """One durable directory (WAL segments + checkpoint generations)."""

    def __init__(self, path, *, fs: FileSystem | None = None,
                 fsync: str = "batch", checkpoint_every: int = 256,
                 sync_every: int = 8, keep_checkpoints: int = 2):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"unknown fsync policy {fsync!r} "
                             f"(expected one of {FSYNC_POLICIES})")
        self.fs = fs if fs is not None else RealFileSystem()
        self.path = os.fspath(path)
        self.fs.makedirs(self.path)
        self.checkpoint_every = max(1, checkpoint_every)
        self.wal = WriteAheadLog(self.fs, self.path, fsync=fsync,
                                 sync_every=sync_every)
        self.checkpoints = CheckpointStore(self.fs, self.path,
                                           keep=keep_checkpoints)
        self.replaying = False
        self.closed = False
        self.last_recovery: RecoveryReport | None = None
        self._records_since_checkpoint = 0
        # The serving layer's at-most-once seam (see repro.server):
        # `stamp(meta)` rides an opaque meta dict on every WAL record
        # appended inside the block (atomically with the batch, so a
        # crash either persists the mutation WITH its idempotency token
        # or neither), `server_state_provider` lets the server fold its
        # dedup ledger into checkpoints, and recovery surfaces both on
        # `recovered_server_state` / `recovered_batch_meta`.
        self.server_state_provider = None
        self.recovered_server_state = None
        self.recovered_batch_meta: list[dict] = []
        self._last_server_state = None
        self._pending_meta: dict | None = None
        # cumulative durability activity, mirrored into the metrics
        # registry by the sync hook (same pattern as router/index stats)
        self._records_replayed = 0
        self._bytes_replayed = 0
        self._torn_discarded = 0
        self._recovery_seconds = 0.0
        self._checkpoint_seconds = 0.0
        self._checkpoints_total = 0

    def has_state(self) -> bool:
        """Whether the directory already holds durable state."""
        return bool(self.checkpoints.list() or self.wal.segments())

    # -- binding -----------------------------------------------------------------------

    def bind(self, registry) -> None:
        """Attach to ``registry``: subsequent batches/DDL are logged and
        durability stats join the registry's metric snapshots."""
        registry.wal = self
        registry.metrics.add_sync_hook(self._sync_metrics)

    def _sync_metrics(self, metrics) -> None:
        metrics.counter("wal_records_total",
                        "Records appended to the write-ahead log"
                        ).set(self.wal.stats.records_appended)
        metrics.counter("wal_bytes",
                        "WAL bytes written plus bytes scanned by recovery"
                        ).set(self.wal.stats.bytes_appended
                              + self._bytes_replayed)
        metrics.counter("wal_fsyncs_total",
                        "fsync calls issued by the write-ahead log"
                        ).set(self.wal.stats.fsyncs)
        metrics.counter("wal_records_replayed",
                        "WAL records replayed by recovery"
                        ).set(self._records_replayed)
        metrics.counter("wal_torn_records_discarded",
                        "Torn/corrupt trailing records discarded"
                        ).set(self._torn_discarded)
        metrics.counter("recovery_seconds",
                        "Cumulative wall-clock time spent recovering"
                        ).set(self._recovery_seconds)
        metrics.counter("checkpoint_seconds",
                        "Cumulative wall-clock time writing checkpoints"
                        ).set(self._checkpoint_seconds)
        metrics.counter("checkpoints_total", "Checkpoints written"
                        ).set(self._checkpoints_total)
        metrics.gauge("wal_last_lsn", "Newest LSN appended or replayed"
                      ).set(self.wal.last_lsn)

    # -- logging (called by the registry / facade) -------------------------------------

    def log_batch(self, updates: list[UpdateRequest]) -> None:
        """Append one routed update batch *before* it mutates anything."""
        if self.replaying or not updates:
            return
        self._append({"t": "batch",
                      "u": [_encode_request(r) for r in updates]})

    def log_load(self, name: str, document: XmlDocument) -> None:
        if self.replaying:
            return
        self._append({"t": "load", "name": name,
                      "xml": document.to_string()})

    def log_create_view(self, name: str, query: str,
                        policy: MaintenancePolicy,
                        materialize: bool = True) -> None:
        if self.replaying:
            return
        self._append({"t": "create_view", "name": name, "query": query,
                      "policy_kind": policy.kind,
                      "policy_threshold": policy.threshold,
                      "materialize": materialize})

    def log_drop_view(self, name: str) -> None:
        if self.replaying:
            return
        self._append({"t": "drop_view", "name": name})

    def _append(self, payload: dict) -> None:
        if self.closed:
            raise RuntimeError("durability manager is closed")
        if self._pending_meta is not None:
            payload = {**payload, "m": self._pending_meta}
        self.wal.append(payload)
        self._records_since_checkpoint += 1

    @contextlib.contextmanager
    def stamp(self, meta: dict):
        """Attach ``meta`` to every WAL record appended in this block.

        The meta rides inside the record itself, so it is durable
        exactly when the logged mutation is — the atomicity the serving
        layer's retry dedup ledger needs: an acknowledged-but-retried
        request can be answered from the recovered ledger instead of
        double-applying, and a crash before the record means neither
        the mutation nor its token survived.
        """
        previous = self._pending_meta
        self._pending_meta = meta
        try:
            yield
        finally:
            self._pending_meta = previous

    # -- checkpointing -----------------------------------------------------------------

    def maybe_checkpoint(self, registry) -> bool:
        """Cut a checkpoint when enough records accumulated since the
        last one (called by the registry after each applied stream)."""
        if self.replaying \
                or self._records_since_checkpoint < self.checkpoint_every:
            return False
        self.checkpoint(registry)
        return True

    def checkpoint(self, registry) -> int:
        """Serialize the registry's full state at the current LSN, roll
        the WAL, and prune old generations; returns the checkpoint LSN.

        Nothing is truncated until the new checkpoint has been re-read
        and CRC-verified, and the WAL keeps every segment the oldest
        *retained* generation needs — so a corrupt newest checkpoint can
        always fall back one generation with its replay tail intact.
        """
        started = time.perf_counter()
        # Quiesce before capturing: queued deferred trees are not part
        # of the snapshot, and their WAL records are about to be
        # truncated — flushing folds them into the extents (and leaves
        # operator-state entries clean enough to checkpoint).
        registry.flush()
        state = capture_state(registry)
        if self.server_state_provider is not None:
            # The serving layer's durable sidecar state (applied_index
            # high-water mark + retry dedup ledger) checkpoints with the
            # registry so WAL truncation cannot orphan it.
            state["server"] = self._last_server_state = \
                self.server_state_provider()
        else:
            # A provider-less checkpoint (Database.checkpoint()/close()
            # on a durable db whose server has stopped or never started
            # this run) must not orphan the sidecar either: carry the
            # last known blob forward, and keep any still-unclaimed
            # WAL-tail batch meta alive under a manager-owned key —
            # this checkpoint is about to truncate the records it rode
            # in on.
            if self._last_server_state is not None:
                state["server"] = self._last_server_state
            if self.recovered_batch_meta:
                state["server_meta"] = list(self.recovered_batch_meta)
        lsn = self.wal.last_lsn
        self.checkpoints.write(lsn, state)
        self.wal.start_segment(lsn + 1)
        oldest_retained = self.checkpoints.prune()
        self.wal.drop_segments_before(oldest_retained + 1)
        self._records_since_checkpoint = 0
        self._checkpoints_total += 1
        self._checkpoint_seconds += time.perf_counter() - started
        return lsn

    # -- recovery ----------------------------------------------------------------------

    def recover(self, registry) -> RecoveryReport:
        """Rebuild ``registry`` (fresh, empty) from the durable directory
        and position the WAL for appending.  Call :meth:`bind` after."""
        report = RecoveryReport()
        started = time.perf_counter()
        self.recovered_server_state = None
        self.recovered_batch_meta = []
        with registry.tracer.span("recovery", path=self.path) as span:
            loaded = self.checkpoints.load_latest()
            base_lsn = 0
            if loaded is not None:
                base_lsn, state, generation = loaded
                self.recovered_server_state = state.pop("server", None)
                self._last_server_state = self.recovered_server_state
                self.recovered_batch_meta.extend(
                    state.pop("server_meta", ()))
                restore_state(registry, state)
                report.checkpoint_lsn = base_lsn
                report.checkpoint_generation = generation
            self.replaying = True
            try:
                tail = self.wal.recover(base_lsn)
                for _lsn, payload in tail.records:
                    if not self._replay(registry, payload):
                        report.replay_errors += 1
            finally:
                self.replaying = False
            report.wal_records_replayed = len(tail.records)
            report.wal_bytes = tail.bytes_scanned
            report.torn_records_discarded = tail.torn_records_discarded
            report.documents = len(registry.storage.document_names)
            report.views = len(registry)
            report.recovery_seconds = time.perf_counter() - started
            span.set(checkpoint_lsn=report.checkpoint_lsn,
                     generation=report.checkpoint_generation,
                     records_replayed=report.wal_records_replayed,
                     torn_discarded=report.torn_records_discarded,
                     views=report.views,
                     seconds=report.recovery_seconds)
        self._records_replayed += report.wal_records_replayed
        self._bytes_replayed += report.wal_bytes
        self._torn_discarded += report.torn_records_discarded
        self._recovery_seconds += report.recovery_seconds
        self._records_since_checkpoint = report.wal_records_replayed
        self.last_recovery = report
        return report

    def _replay(self, registry, payload: dict) -> bool:
        """Apply one WAL record through the normal code paths; returns
        False when a batch re-raised (reproducing a pre-crash partial
        application, which is the converged state, not an error)."""
        kind = payload["t"]
        if kind == "load":
            registry.storage.register(XmlDocument.from_string(
                payload["name"], payload["xml"]))
        elif kind == "create_view":
            policy = MaintenancePolicy(payload["policy_kind"],
                                       payload["policy_threshold"])
            registry.register(payload["name"], payload["query"],
                              policy=policy,
                              materialize=payload.get("materialize", True))
        elif kind == "drop_view":
            registry.unregister(payload["name"])
        elif kind == "batch":
            requests = [_decode_request(u) for u in payload["u"]]
            try:
                registry.apply_updates(requests)
            except Exception:
                return False
        else:
            raise ValueError(f"unknown WAL record type {kind!r}")
        # Surface the serving layer's stamped meta only for records
        # that (re)applied — a re-failed batch was never acknowledged,
        # so its token must not answer a retry with a phantom success.
        if "m" in payload:
            self.recovered_batch_meta.append(payload["m"])
        return True

    # -- lifecycle ---------------------------------------------------------------------

    def close(self, registry=None) -> None:
        """Flush durable state and release the log (idempotent).  With a
        registry, a final checkpoint is cut first so the next open
        restores instead of replaying."""
        if self.closed:
            return
        if registry is not None:
            self.checkpoint(registry)
        self.wal.close()
        self.closed = True
