"""Atomic, CRC-verified checkpoints of the whole engine state.

A checkpoint file ``checkpoint-<lsn>.ckpt`` holds one pickled state dict
(see :mod:`repro.durability.snapshot`) behind a fixed header::

    magic "RPCK" | format:u32 | lsn:u64 | crc32:u32 | length:u64

Writes are crash-atomic: the bytes go to a ``.tmp`` sibling, are
fsynced, atomically renamed over the final name, and the directory entry
is fsynced — a reader sees either the complete new checkpoint or none
of it.  Every write is re-read and CRC-verified before the caller is
allowed to truncate the WAL behind it.

The store retains the newest ``keep`` generations (default 2): recovery
falls back to the previous checkpoint when the newest fails its CRC,
and the WAL keeps every segment the *oldest retained* generation would
need, so the fallback always has its replay tail.
"""

from __future__ import annotations

import pickle
import struct
import zlib

from .files import FileSystem

__all__ = ["CheckpointError", "CheckpointStore"]

_MAGIC = b"RPCK"
_FORMAT = 1
_HEADER = struct.Struct(">4sIQIQ")

_PREFIX = "checkpoint-"
_SUFFIX = ".ckpt"


class CheckpointError(Exception):
    """A checkpoint file is missing, truncated, or fails verification."""


def _checkpoint_name(lsn: int) -> str:
    return f"{_PREFIX}{lsn:020d}{_SUFFIX}"


def parse_checkpoint_name(name: str) -> int | None:
    if not (name.startswith(_PREFIX) and name.endswith(_SUFFIX)):
        return None
    digits = name[len(_PREFIX):-len(_SUFFIX)]
    return int(digits) if digits.isdigit() else None


class CheckpointStore:
    """Numbered checkpoint generations inside one durable directory."""

    def __init__(self, fs: FileSystem, directory: str, keep: int = 2):
        self._fs = fs
        self.directory = directory
        self.keep = max(1, keep)

    def list(self) -> list[tuple[int, str]]:
        """``(lsn, path)`` of every checkpoint, newest first."""
        out = []
        for name in self._fs.listdir(self.directory):
            lsn = parse_checkpoint_name(name)
            if lsn is not None:
                out.append((lsn, f"{self.directory}/{name}"))
        out.sort(reverse=True)
        return out

    # -- writing -----------------------------------------------------------------------

    def write(self, lsn: int, state: dict) -> str:
        """Atomically persist ``state`` as the checkpoint at ``lsn``;
        verified by re-read before returning."""
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        header = _HEADER.pack(_MAGIC, _FORMAT, lsn, zlib.crc32(payload),
                              len(payload))
        path = f"{self.directory}/{_checkpoint_name(lsn)}"
        tmp = path + ".tmp"
        fh = self._fs.open(tmp, "wb")
        try:
            fh.write(header)
            fh.write(payload)
            self._fs.fsync(fh)
        finally:
            fh.close()
        self._fs.replace(tmp, path)
        self._fs.fsync_dir(self.directory)
        self.load_one(path)   # never truncate the WAL behind a bad write
        return path

    # -- reading -----------------------------------------------------------------------

    def load_one(self, path: str) -> tuple[int, dict]:
        """Decode and verify one checkpoint file → ``(lsn, state)``."""
        with self._fs.open(path, "rb") as fh:
            header = fh.read(_HEADER.size)
            if len(header) < _HEADER.size:
                raise CheckpointError(f"truncated checkpoint header: {path}")
            magic, fmt, lsn, crc, length = _HEADER.unpack(header)
            if magic != _MAGIC:
                raise CheckpointError(f"bad checkpoint magic in {path}")
            if fmt != _FORMAT:
                raise CheckpointError(
                    f"unsupported checkpoint format {fmt} in {path}")
            payload = fh.read(length)
        if len(payload) < length:
            raise CheckpointError(f"truncated checkpoint payload: {path}")
        if zlib.crc32(payload) != crc:
            raise CheckpointError(f"checkpoint CRC mismatch: {path}")
        try:
            state = pickle.loads(payload)
        except Exception as exc:
            raise CheckpointError(
                f"checkpoint unpickle failed: {path}: {exc}") from exc
        return lsn, state

    def load_latest(self) -> tuple[int, dict, int] | None:
        """The newest checkpoint that verifies, as ``(lsn, state,
        generation)`` where generation 0 is the newest on disk — a
        nonzero generation means corruption fallback kicked in.  None
        when no checkpoint verifies (cold start)."""
        for generation, (_lsn, path) in enumerate(self.list()):
            try:
                lsn, state = self.load_one(path)
            except (CheckpointError, OSError):
                continue
            return lsn, state, generation
        return None

    # -- retention ---------------------------------------------------------------------

    def prune(self) -> int:
        """Drop all but the newest ``keep`` generations; returns the
        oldest *retained* LSN (the WAL must keep its replay tail)."""
        checkpoints = self.list()
        for _lsn, path in checkpoints[self.keep:]:
            self._fs.remove(path)
        retained = checkpoints[:self.keep]
        return retained[-1][0] if retained else 0
