"""Combine, Group By and aggregate functions (Sections 2.2.2, 3.3.2, 7.6).

Combine implements the ``combine`` function of Fig 3.3 (overriding orders
composed from the input Order Schema) and the ``assignOverRidOrd`` id
operation of Table 4.2.  Group By supports the paper's two ``func`` forms:
a nested Combine (grouping without aggregation) and an aggregate function.
Counts sum across group members, keeping both operators linear for
maintenance (Chapter 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..flexkeys import COMPOSE_SEP, FlexKey
from .base import ExecutionContext, XatOperator, cached_tuple, \
    item_fingerprint
from .conditions import item_value
from .relational import group_key
from .table import (AtomicItem, ContextSpec, Item, NodeItem, TableSchema,
                    XatTable, XatTuple, items_of, single_item)

AGG_FUNCTIONS = ("count", "sum", "avg", "min", "max")


@dataclass
class AggContrib:
    """One group member's contribution: value, derivation count, refresh.

    ``refresh`` marks a contribution whose *value* was (re-)derived this
    round — a count-neutral content refresh, or the assertion half of a
    first-class modify pair.  Counts are pure Z-arithmetic: a member is
    alive while its derivation count is positive; the flag only controls
    whether a merge adopts the carried value.
    """

    value: float
    count: int
    refresh: bool = False


@dataclass
class AggState:
    """Incremental aggregate state: per-member contributions (Section 7.6).

    Keying contributions by member identity makes aggregate maintenance
    *idempotent* under re-derivations (the delta-join terms re-derive
    existing members) and handles min/max deletes without recomputation: a
    member is alive while its derivation count is positive; the aggregate
    value is computed over alive members, each counted once.
    """

    kind: str
    contribs: dict[str, AggContrib] = field(default_factory=dict)

    def add(self, member_id: str, value: float, count: int,
            refresh: bool = False) -> None:
        existing = self.contribs.get(member_id)
        if existing is None:
            self.contribs[member_id] = AggContrib(value, count,
                                                  refresh or count > 0)
            return
        existing.count += count
        if refresh or count > 0:
            # An assertion (or content refresh) carries the member's
            # current value: adopt it, and remember that this state
            # re-derived the value so a later merge adopts it too —
            # even when a retract/assert pair nets the count to zero
            # (the member stays alive in the merged state, its value
            # moves).
            existing.value = value
            existing.refresh = True

    def merge(self, other: "AggState") -> "AggState":
        merged = AggState(self.kind,
                          {k: AggContrib(c.value, c.count)
                           for k, c in self.contribs.items()})
        for member_id, contrib in other.contribs.items():
            existing = merged.contribs.get(member_id)
            if existing is None:
                if contrib.count > 0:
                    merged.contribs[member_id] = AggContrib(contrib.value,
                                                            contrib.count)
                elif contrib.refresh:
                    # value-only re-derivation of a member this state
                    # never saw: keep it alive with one derivation
                    merged.contribs[member_id] = AggContrib(contrib.value,
                                                            1)
                continue
            existing.count += contrib.count
            if contrib.refresh:
                existing.value = contrib.value
        merged.contribs = {k: c for k, c in merged.contribs.items()
                           if c.count > 0}
        return merged

    def alive_values(self) -> list[float]:
        return [c.value for c in self.contribs.values() if c.count > 0]

    def value(self) -> str:
        values = self.alive_values()
        if self.kind == "count":
            return _format_number(len(values))
        if self.kind == "sum":
            return _format_number(sum(values))
        if not values:
            return ""
        if self.kind == "avg":
            return _format_number(sum(values) / len(values))
        return _format_number(min(values) if self.kind == "min"
                              else max(values))


def _format_number(value) -> str:
    number = float(value)
    if number == int(number):
        return str(int(number))
    return repr(number)


def _member_id(item) -> str:
    if isinstance(item, NodeItem):
        return item.key.value
    assert isinstance(item, AtomicItem)
    if item.source_key is not None:
        return item.source_key.value
    return "v:" + item.value


def compute_aggregate(kind: str, tuples: Sequence[XatTuple], col: str,
                      ctx: ExecutionContext) -> AggState:
    """Per-member aggregate state over the ``col`` cells of ``tuples``.

    A member's derivation sign comes from its tuple's count — the delta
    join terms may re-derive a member several times with inflated Z-counts,
    but per-member counting keeps each value contribution single.
    """
    if kind not in AGG_FUNCTIONS:
        raise ValueError(f"unknown aggregate {kind!r}")
    state = AggState(kind)
    for tup in tuples:
        for item in items_of(tup[col]):
            weight = tup.count * item.count
            refresh = tup.refresh or item.refresh
            if refresh:
                # A content refresh is count-neutral: it re-derives the
                # member's value but adds no derivation (its tuple count
                # of 1 is not a delta).
                weight = 0
            if weight == 0 and not refresh:
                continue
            # count() aggregates nodes, whose text need not be numeric.
            number = 0.0 if kind == "count" else float(item_value(item, ctx))
            state.add(_member_id(item), number, weight, refresh=refresh)
    return state


def _copied_item(item: Item, count: int) -> Item:
    """A cached-table copy of one group member (refresh flag stripped)."""
    if isinstance(item, NodeItem):
        return NodeItem(item.key, count, False, item.skeleton)
    assert isinstance(item, AtomicItem)
    return AtomicItem(item.value, item.source_key, count, False,
                      item.order_value, item.agg)


def merge_member_items(existing: Sequence[Item],
                       delta: Sequence[Item]) -> Optional[list[Item]]:
    """Patch a cached group's member list with its delta members.

    Members match by item identity (key / value, overriding orders
    included); counts merge under Z-semantics, refresh members replace in
    place.  ``None`` when the delta cannot be reconciled (the caller
    falls back to recomputation).
    """
    merged: dict[tuple, Item] = {}
    for item in existing:
        merged[item_fingerprint(item)] = item
    for item in delta:
        key = item_fingerprint(item)
        current = merged.get(key)
        if item.refresh:
            if current is None:
                return None
            merged[key] = _copied_item(item, current.count)
        elif current is None:
            if item.count <= 0:
                return None
            merged[key] = _copied_item(item, item.count)
        else:
            count = current.count + item.count
            if count <= 0:
                del merged[key]
            else:
                merged[key] = _copied_item(current, count)
    return list(merged.values())


def _resigned_item(item: Item, count: int, refresh: bool) -> Item:
    """A copy of ``item`` carrying a merged count / refresh flag."""
    if isinstance(item, NodeItem):
        return NodeItem(item.key, count, refresh, item.skeleton,
                        item.text_override)
    assert isinstance(item, AtomicItem)
    return AtomicItem(item.value, item.source_key, count, refresh,
                      item.order_value, item.agg)


def _merge_signed_items(combined: list[Item]) -> list[Item]:
    """Collapse same-identity signed items to one net emission.

    A delta pass may derive one member several times with signed counts
    (the retract/assert halves of a first-class modify, plus the old-side
    cross terms of the join expansion).  The Deep Union fuses a combine
    list *sequentially*, so an interleaving whose running sum crosses
    zero would remove the extent node mid-way and silently drop the
    remaining retractions; netting per identity first makes the emission
    order-free.  A pair netting to zero with a positive (new-state) half
    becomes a count-neutral content refresh — the derivation survives,
    its content is re-derived.
    """
    def identity(item: Item) -> tuple:
        # The full emission identity: value/key fingerprint *plus* the
        # order token — value-equal items at different positions are
        # distinct result members and must not net against each other.
        return (item_fingerprint(item), item.order_token())

    seen: set = set()
    duplicated = False
    for item in combined:
        if item.refresh:
            continue
        fingerprint = identity(item)
        if fingerprint in seen:
            duplicated = True
            break
        seen.add(fingerprint)
    if not duplicated:
        return combined
    out: list = []
    buckets: dict = {}
    for item in combined:
        if item.refresh:
            out.append(item)
            continue
        fingerprint = identity(item)
        bucket = buckets.get(fingerprint)
        if bucket is None:
            buckets[fingerprint] = bucket = [item]
            out.append(bucket)
        else:
            bucket.append(item)
    result: list[Item] = []
    for entry in out:
        if not isinstance(entry, list):
            result.append(entry)
            continue
        if len(entry) == 1:
            result.append(entry[0])
            continue
        net = sum(item.count for item in entry)
        positive = next((item for item in reversed(entry)
                         if item.count > 0), None)
        if net == 0:
            if positive is not None:
                result.append(_resigned_item(positive, 1, True))
            continue
        representative = positive if positive is not None else entry[0]
        result.append(_resigned_item(representative, net, False))
    return result


def assign_overriding_orders(tuples: Sequence[XatTuple], col: str,
                             order_schema: Sequence[str],
                             ctx: ExecutionContext) -> list[Item]:
    """The ``combine`` function of Fig 3.3: annotate items of ``col``.

    Each produced item carries an overriding order composed of the tuple's
    Order Schema tokens (plus the item's own order when ``col`` is not part
    of the Order Schema), and the tuple's count/refresh annotations.
    """
    with ctx.profiler.timed("overriding_order"):
        combined: list[Item] = []
        order_cols = [c for c in order_schema if c != col]
        col_in_schema = col in order_schema
        for tup in tuples:
            prefix_tokens = []
            for oc in order_cols:
                item = single_item(tup[oc])
                prefix_tokens.append(item.order_token()
                                     if item is not None else "")
            for item in items_of(tup[col]):
                if not order_schema:
                    new_item = _annotated(item, None, tup)
                elif col_in_schema:
                    tokens = prefix_tokens + [item.order_token()]
                    new_item = _annotated(
                        item, FlexKey(COMPOSE_SEP.join(tokens)), tup)
                else:
                    tokens = prefix_tokens + [item.order_token()]
                    new_item = _annotated(
                        item, FlexKey(COMPOSE_SEP.join(tokens)), tup)
                combined.append(new_item)
        return _merge_signed_items(combined)


def _annotated(item: Item, override: Optional[FlexKey],
               tup: XatTuple) -> Item:
    count = item.count * tup.count
    refresh = item.refresh or tup.refresh
    if isinstance(item, NodeItem):
        key = item.key if override is None else item.key.with_override(override)
        return NodeItem(key, count, refresh, item.skeleton)
    assert isinstance(item, AtomicItem)
    source = item.source_key
    if override is not None:
        source = (source or FlexKey(item.order_token() or "zz")) \
            .with_override(override)
    return AtomicItem(item.value, source, count, refresh,
                      item.order_value, item.agg)


class Combine(XatOperator):
    """``C_col(T)``: all cells of ``col`` merged into one sequence."""

    symbol = "C"

    def __init__(self, child: XatOperator, col: str):
        super().__init__([child])
        self.col = col

    def _build_schema(self) -> TableSchema:
        # Category IV of Table 4.1: the "all" lineage; no tuple order.
        return TableSchema(
            (self.col,), (),
            {self.col: ContextSpec(order=None,
                                   lineage=(("*", None),))})

    def execute(self, ctx: ExecutionContext) -> XatTable:
        source = ctx.evaluate(self.inputs[0])
        items = assign_overriding_orders(
            source.tuples, self.col, source.schema.order_schema, ctx)
        table = XatTable(self.schema)
        table.append(XatTuple({self.col: items}))
        return table

    # Persistent state: the single all-tuple's item list merges by member.

    def state_merge_key(self, tup: XatTuple, ctx) -> tuple:
        return ("combine",)

    def state_apply(self, existing, dt, ctx):
        if existing is None:
            return ("insert", cached_tuple(dt))
        merged = merge_member_items(items_of(existing[self.col]),
                                    items_of(dt[self.col]))
        if merged is None:
            return ("fail", None)
        return ("replace", XatTuple({self.col: merged}, existing.count,
                                    False, False))

    def describe(self) -> str:
        return f"Combine {self.col}"


class GroupBy(XatOperator):
    """``gamma_cols(T, func)`` where func is Combine or an aggregate.

    Value-based grouping; group counts are sums of member counts.
    """

    symbol = "gamma"

    def __init__(self, child: XatOperator, group_cols: Sequence[str],
                 combine_col: Optional[str] = None,
                 agg: Optional[tuple[str, str, str]] = None):
        """``combine_col`` nests that column per group; ``agg`` is
        ``(function, input_col, output_col)``.  Exactly one must be given."""
        super().__init__([child])
        if (combine_col is None) == (agg is None):
            raise ValueError("GroupBy needs exactly one of combine_col/agg")
        self.group_cols = tuple(group_cols)
        self.combine_col = combine_col
        self.agg = agg

    def _result_col(self) -> str:
        return self.combine_col if self.combine_col else self.agg[2]

    def _build_schema(self) -> TableSchema:
        base = self.inputs[0].schema
        carried = tuple(c for c in base.columns
                        if c not in self.group_cols
                        and c != self._result_col())
        columns = self.group_cols + carried + (self._result_col(),)
        context: dict[str, ContextSpec] = {}
        lineage = tuple((g, None) for g in self.group_cols)
        for col in self.group_cols:
            context[col] = ContextSpec(order=None, lineage=())
        for col in carried:
            # Carried columns are functionally dependent on the grouping
            # columns (they come from the outer block being grouped).
            context[col] = ContextSpec(order=None,
                                       lineage=base.spec(col).lineage)
        context[self._result_col()] = ContextSpec(order=None, lineage=lineage)
        # Value-based grouping destroys tuple order (Category II, Table 3.1).
        return TableSchema(columns, (), context)

    def execute(self, ctx: ExecutionContext) -> XatTable:
        source = ctx.evaluate(self.inputs[0])
        groups: dict[tuple, list[XatTuple]] = {}
        order: list[tuple] = []
        for tup in source:
            key = group_key(tup, self.group_cols, ctx)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(tup)
        table = XatTable(self.schema)
        for key in order:
            members = groups[key]
            # A delta group may mix count-carrying members (retractions,
            # assertions, signed re-derivations) with count-neutral
            # refresh members.  One merged tuple cannot express both —
            # downstream, a refresh node fuses count-neutrally and would
            # swallow the counts (and an aggregate cell would conflate
            # value re-derivations with derivation-count deltas) — so
            # the two parts emit separately: the signed part first, the
            # content refresh after it.
            refreshers = [t for t in members if t.refresh]
            counted = [t for t in members if not t.refresh]
            if refreshers and counted:
                self._emit_group(table, counted, source, ctx)
                self._emit_group(table, refreshers, source, ctx)
                continue
            self._emit_group(table, members, source, ctx)
        return table

    def _emit_group(self, table: XatTable, members, source, ctx) -> None:
        count = sum(t.count for t in members)
        refresh = any(t.refresh for t in members)
        eras = {t.era for t in members}
        era = eras.pop() if len(eras) == 1 else None
        cells: dict = {}
        for col in self.schema.columns:
            if col == self._result_col():
                continue
            value = members[0][col]
            if value is None:
                for member in members[1:]:
                    if member[col] is not None:
                        value = member[col]
                        break
            cells[col] = value
        if self.combine_col is not None:
            cells[self.combine_col] = assign_overriding_orders(
                members, self.combine_col,
                source.schema.order_schema, ctx)
        else:
            kind, in_col, out_col = self.agg
            state = compute_aggregate(kind, members, in_col, ctx)
            cells[out_col] = AtomicItem(state.value(), agg=state)
        if count == 0 and not refresh and self.combine_col is not None \
                and not cells[self.combine_col]:
            return
        table.append(XatTuple(cells, count, refresh, era=era))

    # Persistent count state (Section 7.6): cached group tuples merge by
    # group key; aggregate cells merge per-member contribution state,
    # Combine cells merge member item lists.

    def state_merge_key(self, tup: XatTuple, ctx) -> tuple:
        return ("group", group_key(tup, self.group_cols, ctx))

    def state_apply(self, existing, dt, ctx):
        result_col = self._result_col()
        if existing is None:
            if dt.refresh or dt.count < 0:
                return ("fail", None)
            return ("insert", cached_tuple(dt))
        count = existing.count + (0 if dt.refresh else dt.count)
        if self.agg is not None:
            e_item = single_item(existing[result_col])
            d_item = single_item(dt[result_col])
            if (e_item is None or d_item is None or e_item.agg is None
                    or d_item.agg is None):
                return ("fail", None)
            merged_state = e_item.agg.merge(d_item.agg)
            if not merged_state.contribs:
                return ("remove", None)
            if count <= 0:
                # Count bookkeeping and contribution state disagree (a
                # refresh-mixed batch can do this): recompute instead of
                # serving a fabricated group count.
                return ("fail", None)
            cells = dict(existing.cells)
            cells[result_col] = AtomicItem(merged_state.value(),
                                           agg=merged_state)
            return ("replace", XatTuple(cells, count, False, False))
        merged = merge_member_items(items_of(existing[result_col]),
                                    items_of(dt[result_col]))
        if merged is None:
            return ("fail", None)
        if count <= 0 and not merged:
            return ("remove", None)
        cells = dict(existing.cells)
        cells[result_col] = merged
        return ("replace", XatTuple(cells, count, False, False))

    def describe(self) -> str:
        func = (f"Combine {self.combine_col}" if self.combine_col
                else f"{self.agg[0]}({self.agg[1]})")
        return f"GroupBy {', '.join(self.group_cols)} ({func})"


class Aggregate(XatOperator):
    """Whole-table aggregate (no grouping): one output tuple."""

    symbol = "agg"

    def __init__(self, child: XatOperator, kind: str, col: str, out: str):
        super().__init__([child])
        if kind not in AGG_FUNCTIONS:
            raise ValueError(f"unknown aggregate {kind!r}")
        self.kind = kind
        self.col = col
        self.out = out

    def _build_schema(self) -> TableSchema:
        return TableSchema((self.out,),
                           (), {self.out: ContextSpec(order=None,
                                                      lineage=(("*", None),))})

    def execute(self, ctx: ExecutionContext) -> XatTable:
        source = ctx.evaluate(self.inputs[0])
        state = compute_aggregate(self.kind, source.tuples, self.col, ctx)
        table = XatTable(self.schema)
        table.append(XatTuple({self.out: AtomicItem(state.value(),
                                                    agg=state)}))
        return table

    # Persistent state: the one output tuple's contribution state merges.

    def state_merge_key(self, tup: XatTuple, ctx) -> tuple:
        return ("aggregate",)

    def state_apply(self, existing, dt, ctx):
        if existing is None:
            return ("insert", cached_tuple(dt))
        e_item = single_item(existing[self.out])
        d_item = single_item(dt[self.out])
        if (e_item is None or d_item is None or e_item.agg is None
                or d_item.agg is None):
            return ("fail", None)
        merged = e_item.agg.merge(d_item.agg)
        return ("replace", XatTuple(
            {self.out: AtomicItem(merged.value(), agg=merged)},
            existing.count, False, False))

    def describe(self) -> str:
        return f"Aggregate {self.kind}({self.col}) -> {self.out}"


class TupleFunction(XatOperator):
    """Per-tuple scalar aggregate over a collection cell (e.g. ``count($p/i)``)."""

    symbol = "f"

    def __init__(self, child: XatOperator, kind: str, col: str, out: str):
        super().__init__([child])
        if kind not in AGG_FUNCTIONS:
            raise ValueError(f"unknown aggregate {kind!r}")
        self.kind = kind
        self.col = col
        self.out = out

    def _build_schema(self) -> TableSchema:
        base = self.inputs[0].schema
        context = dict(base.context)
        context[self.out] = ContextSpec(order=base.spec(self.col).order,
                                        lineage=((self.col, None),))
        return TableSchema(base.columns + (self.out,), base.order_schema,
                           context)

    def execute(self, ctx: ExecutionContext) -> XatTable:
        from .conditions import item_value

        source = ctx.evaluate(self.inputs[0])
        table = XatTable(self.schema)
        for tup in source:
            items = items_of(tup[self.col])
            if self.kind == "count":
                value = _format_number(sum(i.count for i in items))
            else:
                numbers = [float(item_value(i, ctx)) for i in items]
                if not numbers:
                    value = ""
                elif self.kind == "sum":
                    value = _format_number(sum(numbers))
                elif self.kind == "avg":
                    value = _format_number(sum(numbers) / len(numbers))
                elif self.kind == "min":
                    value = _format_number(min(numbers))
                else:
                    value = _format_number(max(numbers))
            table.append(tup.extended(self.out, AtomicItem(value)))
        return table

    def describe(self) -> str:
        return f"TupleFunction {self.kind}({self.col}) -> {self.out}"
