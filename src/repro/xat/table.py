"""XAT tables: the tabular data model of the XAT algebra (Section 2.2.1).

An XAT table is an order-*insensitive* bag of tuples (the paper's migration
to non-ordered bag semantics, Section 3.4.3): tuple order is recoverable
from the Order Schema columns, never from physical position.

Cells store :class:`Item` values — references to XML nodes (base or
constructed) or atomic values — or sequences thereof.  Items carry

* an optional *overriding order* on their FlexKey (Section 3.3.2),
* a *count* annotation (Chapter 6) used by delete propagation, and
* a *refresh* flag marking content-only re-derivations (modify updates and
  updates inside exposed fragments), which fuse count-neutrally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence, Union

from ..flexkeys import FlexKey, order_of


class Item:
    """Base class for cell contents."""

    __slots__ = ("count", "refresh")

    def __init__(self, count: int = 1, refresh: bool = False):
        self.count = count
        self.refresh = refresh

    def order_token(self) -> str:
        raise NotImplementedError

    def lineage_token(self) -> str:
        raise NotImplementedError


class NodeItem(Item):
    """A reference to a base or constructed XML node by FlexKey.

    Constructed nodes carry their :class:`~repro.storage.Skeleton` directly
    (``skeleton`` is None for base nodes).

    ``text_override`` materializes a *pre-update* text value on the item:
    the retraction half of a first-class modify pair references the same
    stored node (identity — semantic ids, grouping, order — is the key
    and must match the extent), but every value read must see the text
    the old derivation was routed by.  ``None`` (the default) reads
    current storage.
    """

    __slots__ = ("key", "skeleton", "text_override")

    def __init__(self, key: FlexKey, count: int = 1, refresh: bool = False,
                 skeleton=None, text_override: Optional[str] = None):
        super().__init__(count, refresh)
        self.key = key
        self.skeleton = skeleton
        self.text_override = text_override

    @property
    def is_constructed(self) -> bool:
        return self.skeleton is not None

    def with_override(self, override: Optional[FlexKey]) -> "NodeItem":
        return NodeItem(self.key.with_override(override), self.count,
                        self.refresh, self.skeleton, self.text_override)

    def order_token(self) -> str:
        return order_of(self.key)

    def lineage_token(self) -> str:
        return self.key.value

    def __repr__(self) -> str:
        return f"N({self.key!r})"


class AtomicItem(Item):
    """A text/attribute value; ``source_key`` is its provenance for order.

    ``order_value`` (set by Order By) overrides both — it holds the sortable
    form of the sort key so downstream overriding orders follow query order.
    ``agg`` optionally carries incremental aggregate state (Chapter 7.6).
    """

    __slots__ = ("value", "source_key", "order_value", "agg")

    def __init__(self, value: str, source_key: Optional[FlexKey] = None,
                 count: int = 1, refresh: bool = False,
                 order_value: Optional[str] = None, agg=None):
        super().__init__(count, refresh)
        self.value = value
        self.source_key = source_key
        self.order_value = order_value
        self.agg = agg

    def order_token(self) -> str:
        if self.order_value is not None:
            return self.order_value
        if self.source_key is not None:
            return order_of(self.source_key)
        return self.value

    def lineage_token(self) -> str:
        return self.value

    def __repr__(self) -> str:
        return f"A({self.value!r})"


#: What one cell may hold.
CellValue = Union[None, Item, list]


def items_of(cell: CellValue) -> list[Item]:
    """Normalize a cell to a list of items (empty for None)."""
    if cell is None:
        return []
    if isinstance(cell, Item):
        return [cell]
    return list(cell)


def single_item(cell: CellValue) -> Optional[Item]:
    """The single item of a cell, or None (raises if the cell is a list >1)."""
    items = items_of(cell)
    if not items:
        return None
    if len(items) > 1:
        raise ValueError(f"expected singleton cell, got {len(items)} items")
    return items[0]


class XatTuple:
    """One tuple: named cells plus maintenance annotations.

    ``touched`` marks delta-mode tuples pinned to the propagated update
    (some navigation reached a node at/below/above an update root); unnest
    chains drop untouched tuples so an unrelated branch of a self-join
    contributes an empty delta, not its full table.

    ``era`` marks the halves of a first-class modify pair while the delta
    flows through the plan: ``"old"`` is the retraction (reads pre-update
    values, count < 0), ``"new"`` the assertion.  ``None`` everywhere
    else; downstream navigations use it to resolve the matching state of
    cells they add to the tuple.
    """

    __slots__ = ("cells", "count", "refresh", "touched", "era")

    def __init__(self, cells: Optional[dict[str, CellValue]] = None,
                 count: int = 1, refresh: bool = False,
                 touched: bool = False, era: Optional[str] = None):
        self.cells = cells if cells is not None else {}
        self.count = count
        self.refresh = refresh
        self.touched = touched
        self.era = era

    def __getitem__(self, column: str) -> CellValue:
        return self.cells.get(column)

    def __setitem__(self, column: str, value: CellValue) -> None:
        self.cells[column] = value

    def extended(self, column: str, value: CellValue,
                 count: Optional[int] = None,
                 refresh: Optional[bool] = None,
                 touched: Optional[bool] = None,
                 era: Optional[str] = None) -> "XatTuple":
        """A shallow copy with one extra/overwritten cell."""
        cells = dict(self.cells)
        cells[column] = value
        return XatTuple(cells,
                        self.count if count is None else count,
                        self.refresh if refresh is None else refresh,
                        self.touched if touched is None else touched,
                        self.era if era is None else era)

    def merged(self, other: "XatTuple") -> "XatTuple":
        """Concatenation of two tuples (join output); counts multiply."""
        cells = dict(self.cells)
        cells.update(other.cells)
        return XatTuple(cells, self.count * other.count,
                        self.refresh or other.refresh,
                        self.touched or other.touched,
                        self.era or other.era)

    def projected(self, columns: Iterable[str]) -> "XatTuple":
        return XatTuple({c: self.cells.get(c) for c in columns},
                        self.count, self.refresh, self.touched, self.era)

    def __repr__(self) -> str:
        flags = "" if self.count == 1 and not self.refresh else (
            f" count={self.count}{' refresh' if self.refresh else ''}")
        return f"Tuple({self.cells!r}{flags})"


@dataclass
class ContextSpec:
    """Context Schema entry for one column (Definition 4.2.2).

    ``order``:
      * ``None``      — no order defined (the paper's absent prefix / null);
      * ``()``        — order equals the lineage (the paper's ``()``);
      * ``(c1, …)``   — order derived from the named columns.
    ``lineage``:
      * ``()``                    — self lineage (the paper's ``[]``);
      * ``(("*", None),)``        — the Combine "all" lineage;
      * ``((col, col_id), …)``    — derived from columns, ``col_id`` set by
        XML Union to distinguish/ order the unioned inputs.
    """

    order: Optional[tuple[str, ...]] = ()
    lineage: tuple[tuple[str, Optional[str]], ...] = ()

    @property
    def is_self_lineage(self) -> bool:
        return self.lineage == ()

    @property
    def is_all_lineage(self) -> bool:
        return len(self.lineage) == 1 and self.lineage[0][0] == "*"

    def lineage_columns(self) -> list[str]:
        return [col for col, _ in self.lineage if col != "*"]

    def __repr__(self) -> str:
        if self.order is None:
            order_txt = ""
        elif self.order == ():
            order_txt = "()"
        else:
            order_txt = "(" + ",".join(self.order) + ")"
        lng = ",".join(col + (("{" + cid + "}") if cid else "")
                       for col, cid in self.lineage)
        return f"{order_txt}[{lng}]"


@dataclass
class TableSchema:
    """Schema of an XAT table: columns, Order Schema, Context Schema, ECC."""

    columns: tuple[str, ...]
    order_schema: tuple[str, ...] = ()
    context: dict[str, ContextSpec] = field(default_factory=dict)

    def spec(self, column: str) -> ContextSpec:
        return self.context.get(column, ContextSpec())

    @property
    def ecc(self) -> tuple[str, ...]:
        """Evaluation Context Columns (Definition 4.2.3): self-lineage cols."""
        return tuple(c for c in self.columns
                     if self.spec(c).is_self_lineage)

    def with_columns(self, columns: Sequence[str]) -> "TableSchema":
        return TableSchema(tuple(columns), self.order_schema,
                           dict(self.context))


class XatTable:
    """A bag of :class:`XatTuple` under a :class:`TableSchema`."""

    __slots__ = ("schema", "tuples")

    def __init__(self, schema: TableSchema,
                 tuples: Optional[list[XatTuple]] = None):
        self.schema = schema
        self.tuples = tuples if tuples is not None else []

    @property
    def columns(self) -> tuple[str, ...]:
        return self.schema.columns

    def append(self, tup: XatTuple) -> None:
        self.tuples.append(tup)

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[XatTuple]:
        return iter(self.tuples)

    def sorted_tuples(self) -> list[XatTuple]:
        """Tuples in the order induced by the Order Schema (Def 3.3.2)."""
        order_cols = self.schema.order_schema
        if not order_cols:
            return list(self.tuples)

        def sort_key(tup: XatTuple) -> tuple[str, ...]:
            tokens = []
            for col in order_cols:
                item = single_item(tup[col])
                tokens.append(item.order_token() if item is not None else "")
            return tuple(tokens)

        return sorted(self.tuples, key=sort_key)

    def __repr__(self) -> str:
        return f"XatTable(cols={list(self.columns)}, {len(self.tuples)} tuples)"
