"""Predicates for Select and join conditions.

Comparisons follow XPath general-comparison semantics over our cells:
collections compare existentially, values compare numerically when both
sides parse as numbers and as strings otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from .table import AtomicItem, Item, NodeItem, XatTuple, items_of


@dataclass(frozen=True)
class ColumnRef:
    column: str

    def __str__(self) -> str:
        return self.column


@dataclass(frozen=True)
class Literal:
    value: str

    def __str__(self) -> str:
        return f'"{self.value}"'


Operand = Union[ColumnRef, Literal]

_OPS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def item_value(item: Item, ctx) -> str:
    """The comparison value of one item (node items take their text).

    A node item carrying a ``text_override`` (the retraction half of a
    first-class modify pair) answers with the materialized pre-update
    text instead of current storage.
    """
    if isinstance(item, AtomicItem):
        return item.value
    if isinstance(item, NodeItem):
        if item.text_override is not None:
            return item.text_override
        if item.is_constructed:
            raise ValueError("cannot compare constructed nodes by value")
        return ctx.storage.text(item.key)
    raise TypeError(f"unexpected item {item!r}")


def _coerce(a: str, b: str):
    try:
        return float(a), float(b)
    except (TypeError, ValueError):
        return a, b


@dataclass(frozen=True)
class Comparison:
    """``left op right`` with existential collection semantics."""

    left: Operand
    op: str
    right: Operand

    def __post_init__(self):
        if self.op not in _OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def _values(self, operand: Operand, tup: XatTuple, ctx) -> list[str]:
        if isinstance(operand, Literal):
            return [operand.value]
        return [item_value(item, ctx)
                for item in items_of(tup[operand.column])]

    def evaluate(self, tup: XatTuple, ctx) -> bool:
        fn = _OPS[self.op]
        lefts = self._values(self.left, tup, ctx)
        rights = self._values(self.right, tup, ctx)
        for lv in lefts:
            for rv in rights:
                a, b = _coerce(lv, rv)
                if type(a) is not type(b):
                    a, b = str(lv), str(rv)
                if fn(a, b):
                    return True
        return False

    def columns(self) -> list[str]:
        cols = []
        for operand in (self.left, self.right):
            if isinstance(operand, ColumnRef):
                cols.append(operand.column)
        return cols

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class And:
    conditions: tuple

    def evaluate(self, tup: XatTuple, ctx) -> bool:
        return all(c.evaluate(tup, ctx) for c in self.conditions)

    def columns(self) -> list[str]:
        cols: list[str] = []
        for cond in self.conditions:
            cols.extend(cond.columns())
        return cols

    def __str__(self) -> str:
        return " and ".join(str(c) for c in self.conditions)


Condition = Union[Comparison, And]


def conjuncts(condition: Optional[Condition]) -> list[Comparison]:
    if condition is None:
        return []
    if isinstance(condition, And):
        result = []
        for c in condition.conditions:
            result.extend(conjuncts(c))
        return result
    return [condition]
