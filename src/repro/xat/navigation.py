"""Source and navigation operators (Section 2.2.2).

Besides normal evaluation, navigation implements the delta/anti admission
rules that make running the *same plan* in ``delta`` mode compute the
Z-semantics change of each intermediate table (Chapter 7):

* **anti** mode excludes every node at/below an update root — the
  "pre-insert" (resp. "post-delete") state of the document;
* **delta** mode *seeks* the update roots: an unnest step keeps only
  targets on a path to/at a root whenever any such target exists (pure
  context steps keep everything); the update sign is multiplied into the
  tuple count exactly once, when navigation first crosses *into* an update
  root's subtree; crossing into a *modify* root, stopping at a proper
  ancestor of a root, or changing only a collection's content marks the
  tuple ``refresh`` (content re-derivation, count-neutral).
"""

from __future__ import annotations

from typing import Optional

from ..flexkeys import LEVEL_SEP, FlexKey
from ..xmlmodel import XmlNode
from .base import DELTA, ExecutionContext, XatOperator
from .paths import CHILD, Path, Step
from .table import (AtomicItem, ContextSpec, Item, NodeItem, TableSchema,
                    XatTable, XatTuple, items_of)

#: classification labels used during delta navigation
_AT = "at"
_ANCESTOR = "ancestor"


class Source(XatOperator):
    """``S_xmlDoc -> col``: one tuple referencing the document root."""

    symbol = "S"
    anti_projectable = True

    def __init__(self, document: str, out: str):
        super().__init__()
        self.document = document
        self.out = out

    def _own_documents(self):
        return (self.document,)

    def _build_schema(self) -> TableSchema:
        # Category I of Table 4.1: Context Schema ()[]; Order Schema empty.
        return TableSchema((self.out,), (),
                           {self.out: ContextSpec(order=(), lineage=())})

    def execute(self, ctx: ExecutionContext) -> XatTable:
        table = XatTable(self.schema)
        root = ctx.storage.root_key(self.document)
        table.append(XatTuple({self.out: NodeItem(root)}))
        return table

    def describe(self) -> str:
        return f'Source("{self.document}") -> {self.out}'


def _classify(ctx: ExecutionContext, key: FlexKey) -> Optional[str]:
    if ctx.delta is None:
        return None
    if ctx.storage.document_of_key(key) != ctx.delta.document:
        return None
    return ctx.delta.classify(key)


def _element_targets(ctx: ExecutionContext, entry_key: FlexKey,
                     step: Step, is_first: bool) -> list[FlexKey]:
    """Element-step navigation in storage with document-node semantics.

    Frontier expansion stays on the storage index's sorted-key range
    scans: the stored node is only resolved for the document-node special
    case of the first step, never per expanded frontier key.
    """
    storage = ctx.storage
    targets: list[FlexKey] = []
    if is_first and storage.is_document_root(entry_key):
        # From the implicit document node the first step names (or, for
        # descendant, includes) the document element itself.
        if storage.node(entry_key).tag == step.test:
            targets.append(entry_key)
        if step.axis == CHILD:
            return targets
    elif step.axis == CHILD:
        return storage.children(entry_key, step.test)
    targets.extend(storage.descendants(entry_key, step.test))
    return targets


def _related_targets(ctx: ExecutionContext, entry_key: FlexKey,
                     step: Step, is_first: bool) -> list[FlexKey]:
    """Delta-mode seek: the step's targets *related to an update root*,
    derived from the roots themselves instead of scanning the full target
    set — this is what makes propagation cost scale with the batch, not
    the document.

    Only called for an untouched frontier key outside every root subtree
    (classification ``None`` or ``"ancestor"``): the seek rule keeps
    exactly the related targets there, and when none exist the kept-all
    targets would only produce untouched tuples that the unnest drops —
    so related-only enumeration is exact.  A related target is either an
    ancestor of a root on the path down from ``entry_key`` (one key per
    root per level, read off the root's own atoms) or a matching node
    inside a root's subtree (an index range scan, delta-sized).
    """
    storage = ctx.storage
    results: dict[str, FlexKey] = {}
    if is_first and storage.is_document_root(entry_key):
        # Document-node convention: the first step names (or, for
        # descendant, includes) the document element itself.
        if storage.node(entry_key).tag == step.test:
            results[entry_key.value] = entry_key
        if step.axis == CHILD:
            return list(results.values())
    entry_atoms = entry_key.atoms
    entry_depth = len(entry_atoms)
    for root in ctx.delta.roots:
        root_atoms = root.key.atoms
        if (len(root_atoms) <= entry_depth
                or root_atoms[:entry_depth] != entry_atoms):
            continue  # root not below this frontier key
        if step.axis == CHILD:
            candidates = [FlexKey(
                LEVEL_SEP.join(root_atoms[:entry_depth + 1]))]
        else:
            candidates = [FlexKey(LEVEL_SEP.join(root_atoms[:depth]))
                          for depth in range(entry_depth + 1,
                                             len(root_atoms) + 1)]
            candidates.extend(storage.descendants(root.key, step.test))
        for candidate in candidates:
            value = candidate.value
            if value in results or not storage.has_node(candidate):
                continue
            node = storage.node(candidate)
            if node.is_element and node.tag == step.test:
                results[value] = candidate
    ordered = list(results.values())
    ordered.sort(key=lambda key: key.value)
    return ordered


def _seeks_roots(ctx: ExecutionContext, key: FlexKey,
                 status: Optional[str]) -> bool:
    """Whether delta navigation from ``key`` may seek the roots directly."""
    return (status != _AT
            and ctx.storage.document_of_key(key) == ctx.delta.document)


def _filter_targets(ctx: ExecutionContext, entry_status: Optional[str],
                    targets: list[FlexKey], seek: bool, is_last: bool
                    ) -> list[tuple[FlexKey, int, bool]]:
    """Apply mode admission; returns (key, count multiplier, refresh).

    The update sign multiplies in exactly once, when the step crosses into
    an update root's subtree.  The ancestor→refresh annotation only applies
    at the *final* element step: stopping at a proper ancestor of a root
    means the reached fragment's content changed; merely passing through an
    ancestor on the way down means nothing yet.
    """
    if ctx.mode == "anti":
        kept = []
        for key in targets:
            if _classify(ctx, key) != _AT:
                kept.append((key, 1, False))
        return kept
    if ctx.mode != DELTA or ctx.delta is None:
        return [(key, 1, False) for key in targets]
    if entry_status == _AT:
        # Already inside an update root's subtree: everything below belongs
        # to the delta; the sign was applied at the crossing.
        return [(key, 1, False) for key in targets]
    classified = [(key, _classify(ctx, key)) for key in targets]
    related = [(key, cls) for key, cls in classified if cls is not None]
    if seek and related:
        classified = related
    annotated = []
    for key, cls in classified:
        if cls == _AT:
            sign = ctx.delta.sign_at(key)
            if sign == 0:
                annotated.append((key, 1, True))
            else:
                annotated.append((key, sign, False))
        elif cls == _ANCESTOR and is_last:
            annotated.append((key, 1, True))
        else:
            annotated.append((key, 1, False))
    return annotated


def _value_items(ctx: ExecutionContext, element_key: FlexKey,
                 value_steps: tuple[Step, ...]) -> list[AtomicItem]:
    """Evaluate trailing ``@attr`` / ``text()`` steps against one element."""
    storage = ctx.storage
    if not value_steps:
        return []
    first = value_steps[0]
    if first.is_attribute:
        value = storage.attribute(element_key, first.attribute_name)
        if value is None:
            return []
        return [AtomicItem(value, source_key=element_key)]
    # text(): one item per direct text child, in document order.
    node = storage.node(element_key)
    return [AtomicItem(child.value or "", source_key=child.key)
            for child in node.children if child.is_text]


def _pair_variants(ctx: ExecutionContext, key: FlexKey,
                   value_steps: tuple[Step, ...]):
    """``(old_items, new_items)`` when the cell produced at ``key`` reads
    a value that a first-class modify of this batch changed, else None.

    The two item lists carry the same *identity* (semantic ids, grouping
    and order resolve from keys/values exactly as the old and new
    derivations would) but the old list answers value reads with the
    pre-update text — the retraction half of the pair must be routed by
    the predicates/sort keys the way the original derivation was.
    """
    spec = ctx.delta
    if (ctx.mode != DELTA or spec is None or spec.phase != "modify"
            or not spec.has_pairs):
        return None
    if value_steps:
        if value_steps[0].is_attribute:
            return None  # modifies replace text, never attributes
        pair = spec.modify_pair(key)
        if pair is None:
            return None
        old_value, _new_value = pair
        return ([AtomicItem(old_value, source_key=key)],
                _value_items(ctx, key, value_steps))
    old_text = spec.old_text(ctx.storage, key)
    if old_text is None:
        return None
    return ([NodeItem(key, text_override=old_text)], [NodeItem(key)])


def _emit_pair(table: XatTable, tup: XatTuple, out_col: str, variants,
               count: int) -> int:
    """Emit a first-class modify pair for one navigated tuple.

    An era-neutral tuple splits into a retraction (old items, negated
    count) followed by an assertion (new items, positive count); a tuple
    that already is one half of a pair extends with the matching era's
    items only.  Pair halves never carry ``refresh`` — the assertion is
    a complete re-derivation, which subsumes any content refresh the
    walk accumulated.
    """
    old_items, new_items = variants
    produced = 0
    if tup.era is not None:
        for item in (old_items if tup.era == "old" else new_items):
            table.append(tup.extended(out_col, item, count=count,
                                      refresh=False, touched=True))
            produced += 1
        return produced
    for item in old_items:
        table.append(tup.extended(out_col, item, count=-count,
                                  refresh=False, touched=True, era="old"))
        produced += 1
    for item in new_items:
        table.append(tup.extended(out_col, item, count=count,
                                  refresh=False, touched=True, era="new"))
        produced += 1
    return produced


class NavigateUnnest(XatOperator):
    """``phi_{col,path} -> col'``: navigate then unnest (one output tuple
    per reached node/value)."""

    symbol = "phi"
    # Every output tuple carries its reached node/value provenance, so
    # ANTI == root-coverage filtering — except under keep_empty, whose
    # outer-join semantics resurrect emptied tuples (checked in
    # :func:`repro.engine.opstate.anti_projectable`).
    anti_projectable = True

    def __init__(self, child: XatOperator, col: str, path: Path, out: str,
                 keep_empty: bool = False):
        """``keep_empty`` gives the unnest outer-join semantics: a tuple
        whose navigation reaches nothing survives with a null cell (used for
        correlated inner FLWOR blocks whose group shell must survive)."""
        super().__init__([child])
        self.col = col
        self.path = path
        self.out = out
        self.keep_empty = keep_empty

    def _build_schema(self) -> TableSchema:
        base = self.inputs[0].schema
        columns = base.columns + (self.out,)
        context = dict(base.context)
        in_spec = base.spec(self.col)
        if self.path.ends_in_value:
            # Navigating to a text/attribute value: order and lineage follow
            # the entry column (special case of Category III, Table 4.1).
            order_schema = base.order_schema
            context[self.out] = ContextSpec(order=in_spec.order,
                                            lineage=((self.col, None),))
        else:
            # Category IV of Table 3.1: OS' = OS + col' (entry column, when
            # last, is subsumed); Category III of Table 4.1: self lineage.
            order = list(base.order_schema)
            if order and order[-1] == self.col:
                order.pop()
            order.append(self.out)
            order_schema = tuple(order)
            context[self.out] = ContextSpec(order=(), lineage=())
        return TableSchema(columns, order_schema, context)

    def execute(self, ctx: ExecutionContext) -> XatTable:
        source = ctx.evaluate(self.inputs[0])
        table = XatTable(self.schema)
        element_steps = self.path.element_steps()
        value_steps = self.path.value_steps()
        # A text modify can change neither attributes nor binding
        # multiplicities, so an attribute-valued unnest is inert under a
        # modify batch: crossing/stopping near a modify root must not mark
        # refresh (a spurious group-level refresh would swallow the
        # count-carrying halves of first-class pairs downstream).
        attr_inert = (ctx.mode == DELTA and ctx.delta is not None
                      and ctx.delta.phase == "modify" and value_steps
                      and value_steps[0].is_attribute)
        for tup in source:
            for entry in items_of(tup[self.col]):
                if not isinstance(entry, NodeItem):
                    continue
                entry_key = entry.key.without_override()
                entry_status = _classify(ctx, entry_key) \
                    if ctx.mode == DELTA else None
                frontier: list[tuple[FlexKey, int, bool, Optional[str]]] = [
                    (entry_key, 1, False, entry_status)]
                is_first = ctx.storage.is_document_root(entry_key)
                seeking = (ctx.mode == DELTA and ctx.delta is not None
                           and not tup.touched)
                for index, step in enumerate(element_steps):
                    is_last = index == len(element_steps) - 1
                    next_frontier = []
                    for key, mult, refresh, status in frontier:
                        if seeking and _seeks_roots(ctx, key, status):
                            # Root-driven seek: enumerate only the
                            # related targets instead of scanning and
                            # classifying the step's whole target set.
                            targets = _related_targets(ctx, key, step,
                                                       is_first)
                        else:
                            targets = _element_targets(ctx, key, step,
                                                       is_first)
                        for tgt, m2, r2 in _filter_targets(
                                ctx, status, targets, seek=True,
                                is_last=is_last):
                            tgt_status = (_classify(ctx, tgt)
                                          if ctx.mode == DELTA else None)
                            next_frontier.append(
                                (tgt, mult * m2, refresh or r2, tgt_status))
                    frontier = next_frontier
                    is_first = False
                produced = 0
                for key, mult, refresh, status in frontier:
                    if attr_inert:
                        refresh = False
                        status = None
                    # A tuple is pinned to the delta when this navigation's
                    # final node relates to an update root, or when the
                    # tuple already was.  In delta mode, unpinned tuples are
                    # dropped: an unrelated branch (self-join) must
                    # contribute an empty delta, not its full table.
                    touched = (tup.touched or refresh or mult != 1
                               or status is not None
                               or entry_status == _AT)
                    if ctx.mode == DELTA and not touched:
                        continue
                    variants = _pair_variants(ctx, key, value_steps)
                    if variants is not None:
                        produced += _emit_pair(table, tup, self.out,
                                               variants, tup.count * mult)
                        continue
                    if value_steps:
                        for item in _value_items(ctx, key, value_steps):
                            out = tup.extended(
                                self.out, item,
                                count=tup.count * mult,
                                refresh=tup.refresh or refresh,
                                touched=touched)
                            table.append(out)
                            produced += 1
                    else:
                        out = tup.extended(
                            self.out, NodeItem(key),
                            count=tup.count * mult,
                            refresh=tup.refresh or refresh,
                            touched=touched)
                        table.append(out)
                        produced += 1
                if produced == 0 and self.keep_empty and ctx.mode != DELTA:
                    table.append(tup.extended(self.out, None))
        return table

    def describe(self) -> str:
        return f"NavigateUnnest {self.col}, {self.path} -> {self.out}"


class NavigateCollection(XatOperator):
    """``Phi_{col,path} -> col'``: navigation without unnesting — one output
    tuple per input tuple, the cell holding the reached collection."""

    symbol = "Phi"
    # ANTI drops root-covered *members* from the collection cell while the
    # tuple itself survives — exactly what collection-cell projection does.
    anti_projectable = True

    def __init__(self, child: XatOperator, col: str, path: Path, out: str):
        super().__init__([child])
        self.col = col
        self.path = path
        self.out = out

    def _build_schema(self) -> TableSchema:
        base = self.inputs[0].schema
        columns = base.columns + (self.out,)
        context = dict(base.context)
        in_spec = base.spec(self.col)
        # Category II of Table 4.1: lineage follows the entry column.
        lineage = ((self.col, None),)
        context[self.out] = ContextSpec(order=in_spec.order, lineage=lineage)
        return TableSchema(columns, base.order_schema, context)

    def _member_variants(self, ctx: ExecutionContext, key: FlexKey,
                         items: list[Item], value_steps
                         ) -> tuple[list[Item], list[Item], bool]:
        """One final member's ``(old_items, new_items, changed)``.

        Inserted members exist only in the new state, deleted members
        only in the old one (the deferred-delete discipline keeps them
        readable during propagation); a member whose text a first-class
        modify changed appears in both states but the old variant reads
        the pre-update value.  An unchanged member is shared.
        """
        spec = ctx.delta
        cls = _classify(ctx, key)
        if spec.phase == "insert" and cls == _AT:
            return [], items, True
        if spec.phase == "delete" and cls == _AT:
            return items, [], True
        if spec.phase == "modify" and spec.has_pairs:
            if value_steps:
                if not value_steps[0].is_attribute:
                    pair = spec.modify_pair(key)
                    if pair is not None:
                        return ([AtomicItem(pair[0], source_key=key)],
                                items, True)
            else:
                old_text = spec.old_text(ctx.storage, key)
                if old_text is not None:
                    return ([NodeItem(key, text_override=old_text)],
                            items, True)
        return items, items, False

    def execute(self, ctx: ExecutionContext) -> XatTable:
        source = ctx.evaluate(self.inputs[0])
        table = XatTable(self.schema)
        element_steps = self.path.element_steps()
        value_steps = self.path.value_steps()
        delta_mode = ctx.mode == DELTA and ctx.delta is not None
        for tup in source:
            collected: list[Item] = []   # current-state members
            old_members: list[Item] = []  # pre-batch members
            new_members: list[Item] = []  # post-batch members
            changed = False
            refresh = False
            for entry in items_of(tup[self.col]):
                if not isinstance(entry, NodeItem):
                    continue
                entry_key = entry.key.without_override()
                entry_status = _classify(ctx, entry_key) \
                    if delta_mode else None
                frontier = [entry_key]
                is_first = ctx.storage.is_document_root(entry_key)
                for index, step in enumerate(element_steps):
                    is_last = index == len(element_steps) - 1
                    next_frontier = []
                    for key in frontier:
                        targets = _element_targets(ctx, key, step, is_first)
                        for tgt, m2, r2 in _filter_targets(
                                ctx, entry_status, targets, seek=False,
                                is_last=is_last):
                            # Collections never change tuple multiplicity:
                            # a crossed root marks the tuple refresh instead.
                            if m2 != 1 or r2:
                                refresh = True
                            next_frontier.append(tgt)
                    frontier = next_frontier
                    is_first = False
                for key in frontier:
                    items = (_value_items(ctx, key, value_steps)
                             if value_steps else [NodeItem(key)])
                    collected.extend(items)
                    if not delta_mode:
                        continue
                    if entry_status == _AT:
                        # The whole tuple is inside an update root: its
                        # cells read one state (the sign was applied at
                        # the unnest crossing), never a pair.
                        old_members.extend(items)
                        new_members.extend(items)
                        continue
                    olds, news, member_changed = self._member_variants(
                        ctx, key, items, value_steps)
                    old_members.extend(olds)
                    new_members.extend(news)
                    changed = changed or member_changed
            if delta_mode and tup.era is not None:
                # One half of an upstream pair: extend with the matching
                # state's members (the count already carries the sign).
                members = old_members if tup.era == "old" else new_members
                table.append(tup.extended(self.out, members,
                                          count=tup.count, refresh=False,
                                          touched=True))
                continue
            if delta_mode and changed:
                # The cell's content differs between the two states: a
                # count-neutral refresh cannot re-route derivations that
                # join/group/sort on this cell, so the tuple becomes a
                # first-class retract/assert pair (Section 5.2.2 handled
                # in-flight instead of by delete+reinsert decomposition).
                table.append(tup.extended(self.out, old_members,
                                          count=-tup.count, refresh=False,
                                          touched=True, era="old"))
                table.append(tup.extended(self.out, new_members,
                                          count=tup.count, refresh=False,
                                          touched=True, era="new"))
                continue
            table.append(tup.extended(self.out, collected,
                                      count=tup.count,
                                      refresh=tup.refresh or refresh))
        return table

    def describe(self) -> str:
        return f"NavigateCollection {self.col}, {self.path} -> {self.out}"
