"""The XAT algebra: tables, operators, order & context schemas (Ch 2-4)."""

from .base import (ANTI, DELETE, DELTA, FULL, INSERT, MODIFY, DeltaRoot,
                   DeltaSpec, ExecutionContext, PlanError, Profiler,
                   XatOperator)
from .conditions import And, ColumnRef, Comparison, Literal, conjuncts, \
    item_value
from .construction import (Expose, Map, Merge, Pattern, Tagger,
                           VariableBinding, XmlUnion, XmlUnique)
from .grouping import AGG_FUNCTIONS, AggState, Aggregate, Combine, GroupBy
from .navigation import NavigateCollection, NavigateUnnest, Source
from .paths import CHILD, DESCENDANT, Path, PathError, Step
from .relational import (CartesianProduct, Distinct, Join, LeftOuterJoin,
                         OrderBy, Rename, Select)
from .semantic_ids import (constructed_id, lineage_tokens, order_tokens,
                           override_from_tokens)
from .table import (AtomicItem, CellValue, ContextSpec, Item, NodeItem,
                    TableSchema, XatTable, XatTuple, items_of, single_item)

__all__ = [
    "AGG_FUNCTIONS", "ANTI", "AggState", "Aggregate", "And", "AtomicItem",
    "CHILD", "CartesianProduct", "CellValue", "ColumnRef", "Combine",
    "Comparison", "ContextSpec", "DELETE", "DELTA", "DESCENDANT", "DeltaRoot",
    "DeltaSpec", "Distinct", "ExecutionContext", "Expose", "FULL", "GroupBy",
    "INSERT", "Item", "Join", "LeftOuterJoin", "Literal", "MODIFY", "Map",
    "Merge", "NavigateCollection", "NavigateUnnest", "NodeItem", "OrderBy",
    "Path", "PathError", "Pattern", "PlanError", "Profiler", "Rename",
    "Select", "Source", "Step", "TableSchema", "Tagger", "VariableBinding",
    "XatOperator", "XatTable", "XatTuple", "XmlUnion", "XmlUnique",
    "conjuncts", "constructed_id", "item_value", "items_of",
    "lineage_tokens", "order_tokens", "override_from_tokens", "single_item",
]
