"""Location paths used by navigation operators, SAPT and update targets.

A :class:`Path` is a sequence of steps over the paper's supported axes —
child ``/`` and descendant ``//`` — with element name tests plus the two
value tests ``@name`` and ``text()`` (which may only appear at the end).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

CHILD = "child"
DESCENDANT = "descendant"


@dataclass(frozen=True)
class Step:
    axis: str           # CHILD or DESCENDANT
    test: str           # element name, "@attr", or "text()"

    @property
    def is_attribute(self) -> bool:
        return self.test.startswith("@")

    @property
    def is_text(self) -> bool:
        return self.test == "text()"

    @property
    def is_value(self) -> bool:
        return self.is_attribute or self.is_text

    @property
    def attribute_name(self) -> str:
        return self.test[1:]

    def __str__(self) -> str:
        prefix = "/" if self.axis == CHILD else "//"
        return prefix + self.test


class PathError(ValueError):
    """Raised for malformed path strings."""


@dataclass(frozen=True)
class Path:
    """An axis/test sequence; value steps only in the final position(s).

    ``@attr/text()`` is allowed (attribute then its text) — the text step is
    a no-op on an attribute value.
    """

    steps: tuple[Step, ...]

    @classmethod
    def parse(cls, text: str) -> "Path":
        """Parse ``"bib/book//title/text()"`` or ``"/bib/book"`` style.

        Memoized: paths are frozen and parsing is a pure function, and
        the same path strings recur constantly (SAPT checks, update
        resolution, the session API)."""
        return _parse_path(text)

    @classmethod
    def _parse(cls, text: str) -> "Path":
        text = text.strip()
        if not text:
            return cls(())
        steps: list[Step] = []
        i = 0
        if text.startswith("/"):
            pass  # leading slash is implicit
        while i < len(text):
            if text.startswith("//", i):
                axis = DESCENDANT
                i += 2
            elif text.startswith("/", i):
                axis = CHILD
                i += 1
            else:
                axis = CHILD
            j = i
            while j < len(text) and text[j] != "/":
                j += 1
            test = text[i:j]
            if not test:
                raise PathError(f"empty step in path {text!r}")
            steps.append(Step(axis, test))
            i = j
        path = cls(tuple(steps))
        path._validate()
        return path

    def _validate(self) -> None:
        seen_value = False
        for step in self.steps:
            if seen_value and not step.is_text:
                raise PathError(
                    f"value step must be last in path {self}")
            if step.is_value:
                seen_value = True

    @property
    def is_empty(self) -> bool:
        return not self.steps

    @property
    def ends_in_value(self) -> bool:
        return bool(self.steps) and self.steps[-1].is_value

    def element_steps(self) -> tuple[Step, ...]:
        return tuple(s for s in self.steps if not s.is_value)

    def value_steps(self) -> tuple[Step, ...]:
        return tuple(s for s in self.steps if s.is_value)

    def concat(self, other: "Path") -> "Path":
        return Path(self.steps + other.steps)

    def as_pairs(self) -> list[tuple[str, str]]:
        """(axis, test) pairs for :meth:`StorageManager.find_by_path`."""
        return [(s.axis, s.test) for s in self.steps]

    def __str__(self) -> str:
        return "".join(str(s) for s in self.steps) or "."

    def __len__(self) -> int:
        return len(self.steps)


@lru_cache(maxsize=4096)
def _parse_path(text: str) -> Path:
    return Path._parse(text)
