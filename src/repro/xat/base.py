"""Operator base class and execution context for the XAT algebra.

Execution modes (used by the Propagate phase, Chapter 7):

* ``full``  — evaluate over the current storage state (normal execution);
* ``delta`` — evaluate the *change*: navigation only follows paths that
  intersect an update root of the batch being propagated;
* ``anti``  — evaluate over the current state *minus* the update roots
  (the "old"/"other" state needed by the bilinear join expansion).

A binary join-like operator whose both subtrees reference the updated
document expands ``Δ(A ⋈ B) = ΔA ⋈ B_new  ∪  A_old ⋈ ΔB`` (the combined
3-term form of Fig 7.2); which of ``full``/``anti`` realizes *new* and
*old* depends on the update phase, because inserts are applied to storage
before propagation while deletes are applied after (Chapter 6):

===========  =========  =========
phase        B_new      A_old
===========  =========  =========
insert       full       anti
delete       anti       full
modify       full       full
===========  =========  =========
"""

from __future__ import annotations

import copy as _copy
import itertools
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..flexkeys import FlexKey
from ..obs.core import STATE as _OBS
from ..storage import SkeletonStore, StorageManager
from .table import TableSchema, XatTable, XatTuple

FULL = "full"
DELTA = "delta"
ANTI = "anti"

INSERT = "insert"
DELETE = "delete"
MODIFY = "modify"

_SIGNS = {INSERT: 1, DELETE: -1, MODIFY: 0}


class PlanError(RuntimeError):
    """Raised for malformed plans or unsupported maintenance situations."""


@dataclass(frozen=True)
class DeltaRoot:
    """One update root inside the batch update tree: a key plus its type.

    A *first-class modify* root additionally carries the replaced text as
    an ``(old_value, new_value)`` pair; delta navigation then emits a
    paired retraction (old value, count -1) and assertion (new value,
    count +1) instead of a count-neutral refresh.  Sufficient modifies
    (values that feed no predicate/sort key) leave the pair unset.
    """

    key: FlexKey
    kind: str  # INSERT / DELETE / MODIFY
    old_value: Optional[str] = None
    new_value: Optional[str] = None

    @property
    def sign(self) -> int:
        return _SIGNS[self.kind]

    @property
    def has_pair(self) -> bool:
        return self.kind == MODIFY and self.old_value is not None


@dataclass
class DeltaSpec:
    """The batch being propagated: one document, homogeneous update kind."""

    document: str
    roots: tuple[DeltaRoot, ...]
    phase: str  # INSERT / DELETE / MODIFY

    def classify(self, key: FlexKey) -> Optional[str]:
        """How ``key`` relates to the update roots.

        Returns ``"at"`` (at or below a root), ``"ancestor"`` (proper
        ancestor of a root) or ``None`` (unrelated).
        """
        bare = key.without_override()
        for root in self.roots:
            if root.key == bare or root.key.is_ancestor_of(bare):
                return "at"
        for root in self.roots:
            if bare.is_ancestor_of(root.key):
                return "ancestor"
        return None

    def sign_at(self, key: FlexKey) -> int:
        bare = key.without_override()
        for root in self.roots:
            if root.key == bare or root.key.is_ancestor_of(bare):
                return root.sign
        raise PlanError(f"{key} is not at/below an update root")

    # -- first-class modify pairs -------------------------------------------------------

    @property
    def has_pairs(self) -> bool:
        """Whether any root of this batch is a first-class modify."""
        return self.phase == MODIFY and any(r.has_pair for r in self.roots)

    def modify_pair(self, key: FlexKey) -> Optional[tuple[str, str]]:
        """The ``(old, new)`` text pair when ``key`` *is* a pair root.

        Only an exact match counts: a modify replaces the direct text of
        its target element, so the text of a proper descendant (or
        ancestor-without-the-target's-text) is untouched.
        """
        bare = key.without_override()
        for root in self.roots:
            if root.has_pair and root.key == bare:
                return (root.old_value, root.new_value)
        return None

    def pair_roots_below(self, key: FlexKey) -> list[DeltaRoot]:
        """Pair roots at or below ``key`` (whose old text ``key`` saw)."""
        bare = key.without_override()
        return [root for root in self.roots
                if root.has_pair
                and (root.key == bare or bare.is_ancestor_of(root.key))]

    def old_text(self, storage, key: FlexKey) -> Optional[str]:
        """The *pre-batch* concatenated text of the node at ``key``.

        ``None`` when no pair root sits at/below ``key`` — the node's
        text is the same in both states and the caller needs no
        override.  Otherwise the current subtree text is reconstructed
        with each pair root's direct text replaced by its old value
        (the modify primitive replaces exactly the target's direct text
        children, so this substitution is the whole difference).
        """
        affected = self.pair_roots_below(key)
        if not affected:
            return None
        pairs = {root.key.value: root.old_value for root in affected}
        parts: list[str] = []
        _old_text_walk(storage.node(key.without_override()), pairs, parts)
        return "".join(parts)


def _old_text_walk(node, pairs: dict, parts: list) -> None:
    """Collect subtree text with pair roots' direct text replaced by the
    recorded old values (document order; a pair element contributes its
    old text where its text children sit today)."""
    if node.is_text:
        if node.value:
            parts.append(node.value)
        return
    replaced = node.key.value in pairs if node.key is not None else False
    emitted = False
    for child in node.children:
        if replaced and child.is_text:
            if not emitted:
                parts.append(pairs[node.key.value])
                emitted = True
            continue
        _old_text_walk(child, pairs, parts)
    if replaced and not emitted:
        # The new text is empty (no text child): old text still counted.
        parts.append(pairs[node.key.value])


#: zeroed per-operator counters — what :func:`obs_op_stats` reports for
#: an operator that never executed under instrumentation
_OP_STATS_KEYS = ("runs", "tuples_out", "delta_runs", "delta_tuples_out")


def obs_op_stats(op: "XatOperator") -> dict:
    """The live execution counters of one operator instance.

    ``runs`` / ``tuples_out`` count FULL and ANTI evaluations (the
    current-state sides), ``delta_runs`` / ``delta_tuples_out`` the
    delta-mode passes of incremental maintenance.  Counters accumulate
    on the operator instance itself (one dict per op, shared by every
    run of the plan) and feed the live ``EXPLAIN`` rendering.
    """
    stats = getattr(op, "_obs_stats", None)
    if stats is None:
        return dict.fromkeys(_OP_STATS_KEYS, 0)
    return stats


def _obs_record(op: "XatOperator", mode: str, table: XatTable) -> None:
    stats = getattr(op, "_obs_stats", None)
    if stats is None:
        stats = op._obs_stats = dict.fromkeys(_OP_STATS_KEYS, 0)
    if mode == DELTA:
        stats["delta_runs"] += 1
        stats["delta_tuples_out"] += len(table.tuples)
    else:
        stats["runs"] += 1
        stats["tuples_out"] += len(table.tuples)


class Profiler:
    """Accumulates per-concern wall-clock costs for the paper's breakdowns."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.totals: dict[str, float] = {}

    def add(self, label: str, seconds: float) -> None:
        self.totals[label] = self.totals.get(label, 0.0) + seconds

    def timed(self, label: str):
        return _Timer(self, label)


class _Timer:
    __slots__ = ("_profiler", "_label", "_start")

    def __init__(self, profiler: Profiler, label: str):
        self._profiler = profiler
        self._label = label

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        if self._profiler.enabled:
            self._profiler.add(self._label,
                               time.perf_counter() - self._start)
        return False


class ExecutionContext:
    """Everything an operator needs at run time.

    ``store`` is the pluggable persistent cache layer (an
    :class:`~repro.engine.opstate.OperatorStateStore` or anything with its
    ``serve``/``join_side`` surface): during delta runs, FULL/ANTI-mode
    side evaluation is answered from cross-run operator state instead of
    re-executing the subplan.  The per-run ``_cache`` memo below still
    dedupes within one run; the store is what survives between runs.
    """

    def __init__(self, storage: StorageManager,
                 skeletons: Optional[SkeletonStore] = None,
                 mode: str = FULL,
                 delta: Optional[DeltaSpec] = None,
                 profiler: Optional[Profiler] = None,
                 track_semantic_ids: bool = True,
                 store=None):
        self.storage = storage
        self.skeletons = skeletons if skeletons is not None else SkeletonStore()
        self.mode = mode
        self.delta = delta
        self.profiler = profiler if profiler is not None else Profiler()
        self.track_semantic_ids = track_semantic_ids
        self.store = store
        self.bindings: list[XatTuple] = []      # Map-operator correlation stack
        self._cache: dict[tuple[int, str], XatTable] = {}

    # -- mode management ------------------------------------------------------------

    def with_mode(self, mode: str) -> "ExecutionContext":
        clone = ExecutionContext(self.storage, self.skeletons, mode,
                                 self.delta, self.profiler,
                                 self.track_semantic_ids, self.store)
        clone.bindings = self.bindings
        clone._cache = self._cache
        return clone

    @property
    def mode_for_new(self) -> str:
        """Mode that realizes the *updated* state of a side (see module doc)."""
        if self.delta is not None and self.delta.phase == DELETE:
            return ANTI
        return FULL

    @property
    def mode_for_old(self) -> str:
        """Mode that realizes the *pre-update* state of a side."""
        if self.delta is not None and self.delta.phase == INSERT:
            return ANTI
        return FULL

    # -- navigation admission (delta / anti filters) --------------------------------------

    def admits(self, key: FlexKey) -> bool:
        """Whether a navigated-to node is admitted under the current mode."""
        if self.delta is None or self.mode == FULL:
            return True
        if self.storage.document_of_key(key) != self.delta.document:
            return True
        relation = self.delta.classify(key)
        if self.mode == DELTA:
            return relation is not None
        # ANTI: exclude nodes at or below update roots.
        return relation != "at"

    def delta_annotation(self, key: FlexKey) -> tuple[int, bool]:
        """(count multiplier, refresh flag) for a delta-mode navigation hit."""
        if (self.mode != DELTA or self.delta is None
                or self.storage.document_of_key(key) != self.delta.document):
            return 1, False
        relation = self.delta.classify(key)
        if relation == "at":
            sign = self.delta.sign_at(key)
            if sign == 0:
                return 1, True      # modify: count-neutral refresh
            return sign, False
        if relation == "ancestor":
            return 1, True          # exposed fragment content changed
        return 1, False

    # -- evaluation with memoization ----------------------------------------------------

    def evaluate(self, op: "XatOperator", mode: Optional[str] = None
                 ) -> XatTable:
        ctx = self if mode is None or mode == self.mode else self.with_mode(mode)
        if ctx.bindings:
            # Correlated (Map) evaluation cannot be cached safely.
            result = op.execute(ctx)
            if _OBS.enabled:
                _obs_record(op, ctx.mode, result)
            return result
        # Uncorrelated from here on — the cache key needs no binding-stack
        # discriminator (Map evaluates its RHS directly, never through
        # this memo, so a cached table is always binding-independent).
        assert not ctx.bindings
        cache_key = (id(op), ctx.mode)
        cached = self._cache.get(cache_key)
        if cached is not None:
            return cached
        if (ctx.mode == DELTA and ctx.delta is not None
                and ctx.delta.document not in op.source_documents()):
            result = XatTable(op.schema)  # Δ of an unaffected subtree is empty
        else:
            result = op.execute(ctx)
        if _OBS.enabled:
            _obs_record(op, ctx.mode, result)
        self._cache[cache_key] = result
        return result

    def evaluate_stable(self, op: "XatOperator",
                        mode: Optional[str] = None) -> XatTable:
        """FULL/ANTI evaluation of a stable side subplan during a delta
        run, answered from the persistent operator-state store when one is
        attached (falling back to plain evaluation otherwise)."""
        mode = self.mode if mode is None else mode
        if (self.store is not None and self.delta is not None
                and not self.bindings and mode in (FULL, ANTI)):
            table = self.store.serve(self, op, mode)
            if table is not None:
                return table
        return self.evaluate(op, mode)


_op_ids = itertools.count(1)


def item_fingerprint(item) -> tuple:
    """Identity of one cell item for cached-table patch matching.

    Node items match by key (overriding orders included — they are
    derivation-deterministic); atomic items match by value, mirroring the
    semantic-id discipline under which value-identical derivations fuse.
    """
    key = getattr(item, "key", None)
    if key is not None:  # NodeItem
        override = key.override
        return ("n", key.value, override.value if override else "")
    return ("a", item.value, item.order_value or "")


def tuple_fingerprint(tup: XatTuple, columns) -> tuple:
    """Default whole-tuple identity used to merge delta rows into cached
    FULL tables (collection cells compare as sorted item multisets)."""
    parts = []
    for col in columns:
        cell = tup.cells.get(col)
        if cell is None:
            parts.append(None)
        elif isinstance(cell, list):
            parts.append(tuple(sorted(item_fingerprint(i) for i in cell)))
        else:
            parts.append(item_fingerprint(cell))
    return tuple(parts)


def _cached_item(item):
    """An item normalized for residence in a cached FULL table: the
    delta-only ``refresh`` flag is stripped (a flagged item persisted in
    the cache would leak count-neutral fusion into later deltas that
    read the cached row)."""
    if not item.refresh:
        return item
    stripped = _copy.copy(item)
    stripped.refresh = False
    return stripped


def _cached_cell(cell):
    if cell is None:
        return None
    if isinstance(cell, list):
        if any(item.refresh for item in cell):
            return [_cached_item(item) for item in cell]
        return cell
    return _cached_item(cell)


def cached_tuple(tup: XatTuple, count: Optional[int] = None) -> XatTuple:
    """A copy of a delta tuple normalized for residence in a cached FULL
    table (delta-only annotations stripped, on the tuple and its items)."""
    return XatTuple({col: _cached_cell(cell)
                     for col, cell in tup.cells.items()},
                    tup.count if count is None else count, False, False)


class XatOperator:
    """Base class of every XAT operator.

    Subclasses implement ``_build_schema`` (Order Schema + Context Schema
    rules, Tables 3.1 / 4.1) and ``execute``.  The ``state_*`` hooks and
    ``anti_projectable`` flag drive the persistent operator-state store
    (:mod:`repro.engine.opstate`): they describe how a cached FULL-mode
    result table of this operator is patched by the operator's own
    delta-mode output instead of being re-executed.
    """

    symbol = "op"

    #: ANTI mode ("state minus update roots") equals filtering this
    #: operator's FULL table by root coverage.  Only true for per-tuple
    #: linear operators whose output tuples carry all their storage
    #: provenance (see :func:`repro.engine.opstate.anti_projectable`).
    anti_projectable = False

    def __init__(self, inputs: Sequence["XatOperator"] = ()):
        self.inputs: list[XatOperator] = list(inputs)
        self.schema: TableSchema = None  # type: ignore[assignment]
        self.op_id = next(_op_ids)
        self._source_docs: Optional[frozenset[str]] = None

    # -- plan construction ------------------------------------------------------------

    def prepare(self) -> "XatOperator":
        """Compute schemas bottom-up for the whole subtree; returns self."""
        seen: set[int] = set()

        def visit(op: XatOperator) -> None:
            if id(op) in seen:
                return
            seen.add(id(op))
            for child in op.inputs:
                visit(child)
            op.schema = op._build_schema()
        visit(self)
        return self

    def _build_schema(self) -> TableSchema:
        raise NotImplementedError

    def execute(self, ctx: ExecutionContext) -> XatTable:
        raise NotImplementedError

    def source_documents(self) -> frozenset[str]:
        """Names of source documents referenced anywhere in this subtree."""
        if self._source_docs is None:
            docs: set[str] = set(self._own_documents())
            for child in self.inputs:
                docs |= child.source_documents()
            self._source_docs = frozenset(docs)
        return self._source_docs

    def _own_documents(self) -> Sequence[str]:
        return ()

    # -- persistent-state hooks ---------------------------------------------------------

    def state_merge_key(self, tup: XatTuple, ctx) -> tuple:
        """Identity under which delta rows merge into the cached table."""
        return tuple_fingerprint(tup, self.schema.columns)

    def state_apply(self, existing: Optional[XatTuple], dt: XatTuple,
                    ctx) -> tuple:
        """Patch one delta row against the matching cached tuple.

        Returns ``(verb, tuple)`` with verb one of ``insert`` / ``replace``
        / ``remove`` / ``noop`` / ``fail``; ``fail`` aborts the patch and
        falls back to recomputation (the safe path).  The default is the
        Z-semantics count merge that makes linear operators maintainable
        (Chapter 6); refresh rows are count-neutral re-derivations and
        replace content in place.
        """
        if dt.refresh:
            if existing is None:
                return ("fail", None)
            return ("replace", cached_tuple(dt, count=existing.count))
        if existing is None:
            if dt.count > 0:
                return ("insert", cached_tuple(dt))
            return ("fail", None)
        count = existing.count + dt.count
        if count == 0:
            return ("remove", None)
        if count < 0:
            return ("fail", None)
        return ("replace", XatTuple(existing.cells, count,
                                    existing.refresh, False))

    # -- utilities --------------------------------------------------------------------

    def iter_operators(self):
        """All operators of this subtree, post-order, deduplicated (DAGs)."""
        seen: set[int] = set()

        def visit(op: XatOperator):
            if id(op) in seen:
                return
            seen.add(id(op))
            for child in op.inputs:
                yield from visit(child)
            yield op
        yield from visit(self)

    def pretty(self, depth: int = 0) -> str:
        line = "  " * depth + self.describe()
        return "\n".join([line] + [c.pretty(depth + 1) for c in self.inputs])

    def describe(self) -> str:
        return f"{type(self).__name__}"

    def __repr__(self) -> str:
        return self.describe()
