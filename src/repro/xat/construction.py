"""Result construction operators: Tagger, XML Union/Unique, Merge, Map.

The Tagger builds constructed-node skeletons (never full trees) and assigns
semantic identifiers (``composeNodeIds`` of Fig 4.4).  XML Union assigns the
column-id order prefixes of ``assignColIdPrfx`` (Fig 4.5).  Merge is linear
for maintenance (each side's delta passes through independently).  Map gives
nested FLWOR blocks an executable nested-loop semantics; it is removed by
decorrelation before maintenance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from ..flexkeys import COMPOSE_SEP, FlexKey
from ..storage import ContentItem, Skeleton
from .base import DELTA, ExecutionContext, PlanError, XatOperator
from .conditions import ColumnRef, Literal, item_value
from .semantic_ids import constructed_id, lineage_tokens, order_tokens, \
    override_from_tokens
from .table import (AtomicItem, ContextSpec, Item, NodeItem, TableSchema,
                    XatTable, XatTuple, items_of, single_item)


@dataclass(frozen=True)
class Pattern:
    """A Tagger pattern: ``<tag attr=...>content</tag>``.

    ``attributes`` maps names to operands (columns or literals); ``content``
    entries are column names or ``("literal", text)`` pairs.
    """

    tag: str
    attributes: tuple[tuple[str, Union[ColumnRef, Literal]], ...] = ()
    content: tuple[Union[str, tuple[str, str]], ...] = ()

    def content_columns(self) -> list[str]:
        return [entry for entry in self.content if isinstance(entry, str)]

    def __str__(self) -> str:
        attrs = "".join(f" {name}={{{operand}}}"
                        for name, operand in self.attributes)
        inner = " ".join(entry if isinstance(entry, str) else repr(entry[1])
                         for entry in self.content)
        return f"<{self.tag}{attrs}>{inner}</{self.tag}>"


class Tagger(XatOperator):
    """``T^col_p(T)``: construct one new node per input tuple."""

    symbol = "T"
    XmlUnionColumnIds = "abcdefghijklmnopqrstuvwxyz"

    def __init__(self, child: XatOperator, pattern: Pattern, out: str):
        super().__init__([child])
        self.pattern = pattern
        self.out = out

    def _build_schema(self) -> TableSchema:
        base = self.inputs[0].schema
        columns = base.columns + (self.out,)
        context = dict(base.context)
        # Category V of Table 4.1: self lineage; order follows p.col's order.
        content_cols = self.pattern.content_columns()
        if content_cols:
            in_spec = base.spec(content_cols[0])
            order = in_spec.order
        else:
            order = ()
        context[self.out] = ContextSpec(order=order, lineage=())
        # Category I of Table 3.1: Order Schema passes through.
        return TableSchema(columns, base.order_schema, context)

    def _id_source_columns(self) -> list[str]:
        cols = self.pattern.content_columns()
        if cols:
            return cols
        return [operand.column
                for _name, operand in self.pattern.attributes
                if isinstance(operand, ColumnRef)]

    def execute(self, ctx: ExecutionContext) -> XatTable:
        source = ctx.evaluate(self.inputs[0])
        schema = source.schema
        table = XatTable(self.schema)
        id_cols = self._id_source_columns()
        for tup in source:
            with ctx.profiler.timed("semantic_id"):
                body: list[str] = []
                for col in id_cols:
                    body.extend(lineage_tokens(schema, tup, col))
                if id_cols and not body:
                    # Null-padded (outer-join) tuple: the nested RETURN has
                    # no binding here, so no node is constructed.
                    table.append(tup.extended(self.out, None))
                    continue
                node_id = constructed_id(body)
                content_cols = self.pattern.content_columns()
                tokens = (order_tokens(schema, tup, content_cols[0])
                          if content_cols else [])
                override = override_from_tokens(tokens)
            attributes = {}
            for name, operand in self.pattern.attributes:
                if isinstance(operand, Literal):
                    attributes[name] = operand.value
                else:
                    item = single_item(tup[operand.column])
                    attributes[name] = (item_value(item, ctx)
                                        if item is not None else "")
            content: list[ContentItem] = []
            multi = len(self.pattern.content) > 1
            for index, entry in enumerate(self.pattern.content):
                # With several content entries, a per-entry order prefix
                # fixes construction order (same scheme as XML Union).
                cid = self.XmlUnionColumnIds[index] if multi else None
                if isinstance(entry, str):
                    for item in items_of(tup[entry]):
                        if cid is not None:
                            item = _prefixed(item, cid, ctx)
                        content.append(_to_content(item))
                else:
                    literal = ContentItem.value(entry[1])
                    if cid is not None:
                        literal.key = FlexKey("z").with_override(FlexKey(cid))
                    content.append(literal)
            skeleton = Skeleton(node_id, self.pattern.tag, attributes,
                                content, count=1)
            # The item's count is *relative* to its tuple (1): the absolute
            # derivation count (tuple count x relative) is applied where the
            # item is consumed — by Combine / Group By (assignOverRidOrd) or
            # by an enclosing Tagger.  This keeps join/distinct
            # multiplicities from being applied twice.
            item = NodeItem(node_id if override is None
                            else node_id.with_override(override),
                            count=1, refresh=tup.refresh,
                            skeleton=skeleton)
            table.append(tup.extended(self.out, item))
        return table

    def describe(self) -> str:
        return f"Tagger {self.pattern} -> {self.out}"


def _to_content(item: Item) -> ContentItem:
    if isinstance(item, NodeItem):
        return ContentItem.ref(item.key, item.count, item.refresh,
                               item.skeleton)
    assert isinstance(item, AtomicItem)
    entry = ContentItem.value(item.value, item.count, item.refresh)
    entry.agg = item.agg
    if item.source_key is not None and item.source_key.override is not None:
        entry.key = item.source_key
    return entry


class XmlUnion(XatOperator):
    """``x-union_{col1,col2} -> col``: per-tuple sequence concatenation."""

    symbol = "U"
    _COLUMN_IDS = "abcdefghijklmnopqrstuvwxyz"

    def __init__(self, child: XatOperator, col1: str, col2: str, out: str):
        super().__init__([child])
        self.col1 = col1
        self.col2 = col2
        self.out = out

    def _build_schema(self) -> TableSchema:
        base = self.inputs[0].schema
        columns = base.columns + (self.out,)
        context = dict(base.context)
        spec1, spec2 = base.spec(self.col1), base.spec(self.col2)
        # Category VII of Table 4.1.
        lineage = ((self.col1, "a"), (self.col2, "b"))
        if spec1.order == () and spec2.order == ():
            order: Optional[tuple[str, ...]] = ()
        else:
            merged: list[str] = []
            for spec in (spec1, spec2):
                for c in (spec.order or ()):
                    if c not in merged:
                        merged.append(c)
            order = tuple(merged)
        context[self.out] = ContextSpec(order=order, lineage=lineage)
        return TableSchema(columns, base.order_schema, context)

    def execute(self, ctx: ExecutionContext) -> XatTable:
        source = ctx.evaluate(self.inputs[0])
        table = XatTable(self.schema)
        for tup in source:
            items: list[Item] = []
            for cid, col in (("a", self.col1), ("b", self.col2)):
                for item in items_of(tup[col]):
                    items.append(_prefixed(item, cid, ctx))
            table.append(tup.extended(self.out, items))
        return table

    def describe(self) -> str:
        return f"XmlUnion {self.col1}, {self.col2} -> {self.out}"


def _prefixed(item: Item, cid: str, ctx: ExecutionContext) -> Item:
    """``assignColIdPrfx`` (Fig 4.5): order prefix reflecting union side."""
    with ctx.profiler.timed("overriding_order"):
        token = item.order_token()
        override = FlexKey(cid + "." + token if token else cid)
        if isinstance(item, NodeItem):
            return NodeItem(item.key.with_override(override), item.count,
                            item.refresh, item.skeleton)
        assert isinstance(item, AtomicItem)
        source = (item.source_key or FlexKey("z")).with_override(override)
        return AtomicItem(item.value, source, item.count, item.refresh,
                          item.order_value, item.agg)


class XmlUnique(XatOperator):
    """``upsilon_col -> col'``: drop duplicate members by node identity."""

    symbol = "u"

    def __init__(self, child: XatOperator, col: str, out: str):
        super().__init__([child])
        self.col = col
        self.out = out

    def _build_schema(self) -> TableSchema:
        base = self.inputs[0].schema
        columns = base.columns + (self.out,)
        context = dict(base.context)
        spec = base.spec(self.col)
        context[self.out] = ContextSpec(order=spec.order,
                                        lineage=((self.col, None),))
        return TableSchema(columns, base.order_schema, context)

    def execute(self, ctx: ExecutionContext) -> XatTable:
        source = ctx.evaluate(self.inputs[0])
        table = XatTable(self.schema)
        for tup in source:
            seen: set = set()
            unique: list[Item] = []
            for item in items_of(tup[self.col]):
                marker = (item.key.value if isinstance(item, NodeItem)
                          else ("v", item.value))
                if marker in seen:
                    continue
                seen.add(marker)
                # XML collection operators strip overriding orders: their
                # output is in document order (Section 3.3.2).
                if isinstance(item, NodeItem):
                    unique.append(NodeItem(item.key.without_override(),
                                           item.count, item.refresh,
                                           item.skeleton))
                else:
                    unique.append(item)
            table.append(tup.extended(self.out, unique))
        return table


class Merge(XatOperator):
    """``M(T1, T2)``: vertical concatenation of two single-tuple tables.

    Linear for maintenance: a delta on either side merges with *empty*
    cells for the other side (the other side's content is unchanged).
    """

    symbol = "M"

    def _build_schema(self) -> TableSchema:
        left, right = self.inputs[0].schema, self.inputs[1].schema
        overlap = set(left.columns) & set(right.columns)
        if overlap:
            raise PlanError(f"merge inputs share columns {sorted(overlap)}")
        context = dict(left.context)
        context.update(right.context)
        return TableSchema(left.columns + right.columns, (), context)

    def __init__(self, left: XatOperator, right: XatOperator):
        super().__init__([left, right])

    def execute(self, ctx: ExecutionContext) -> XatTable:
        left = ctx.evaluate(self.inputs[0])
        right = ctx.evaluate(self.inputs[1])
        table = XatTable(self.schema)
        lt = left.tuples[0] if left.tuples else XatTuple()
        rt = right.tuples[0] if right.tuples else XatTuple()
        if not left.tuples and not right.tuples:
            return table
        table.append(lt.merged(rt))
        return table


class VariableBinding(XatOperator):
    """Leaf reading the current Map correlation binding (one tuple)."""

    def __init__(self, columns: Sequence[str]):
        super().__init__()
        self.columns = tuple(columns)

    def _build_schema(self) -> TableSchema:
        return TableSchema(self.columns, (),
                           {c: ContextSpec(order=(), lineage=())
                            for c in self.columns})

    def execute(self, ctx: ExecutionContext) -> XatTable:
        if not ctx.bindings:
            raise PlanError("VariableBinding evaluated outside a Map")
        bound = ctx.bindings[-1]
        table = XatTable(self.schema)
        table.append(bound.projected(self.columns))
        return table

    def describe(self) -> str:
        return f"VariableBinding({', '.join(self.columns)})"


class Map(XatOperator):
    """``Map`` (Section 2.2.2): nested-loop evaluation of a correlated RHS.

    Executable so that every parsed query runs even before decorrelation;
    maintenance requires decorrelated plans (PlanError otherwise).
    """

    symbol = "Map"

    def __init__(self, left: XatOperator, right: XatOperator):
        super().__init__([left, right])

    def _build_schema(self) -> TableSchema:
        left, right = self.inputs[0].schema, self.inputs[1].schema
        columns = left.columns + tuple(c for c in right.columns
                                       if c not in left.columns)
        context = dict(right.context)
        context.update(left.context)
        return TableSchema(columns, left.order_schema, context)

    def execute(self, ctx: ExecutionContext) -> XatTable:
        if ctx.mode == DELTA:
            raise PlanError(
                "Map cannot be maintained incrementally; decorrelate first")
        left = ctx.evaluate(self.inputs[0])
        table = XatTable(self.schema)
        for tup in left:
            ctx.bindings.append(tup)
            try:
                inner = self.inputs[1].execute(ctx)
            finally:
                ctx.bindings.pop()
            for rt in inner:
                table.append(tup.merged(rt))
        return table


class Expose(XatOperator):
    """``epsilon_col``: marks the result column (root of every plan)."""

    symbol = "eps"

    def __init__(self, child: XatOperator, col: str):
        super().__init__([child])
        self.col = col

    def _build_schema(self) -> TableSchema:
        return self.inputs[0].schema

    def execute(self, ctx: ExecutionContext) -> XatTable:
        return ctx.evaluate(self.inputs[0])

    def describe(self) -> str:
        return f"Expose {self.col}"
