"""Semantic identifier generation (Chapter 4, Definition 4.3.1, Table 4.2).

A semantic id of a constructed node is ``<lineage body>c`` where the body is
the ``..``-joined lineage tokens resolved from the Context Schema of the
constructor's input column(s); exposed base nodes keep their FlexKey.  The
optional order prefix (overriding order) is resolved from the Order part of
the Context Schema.  Both resolutions touch only values already present in
the tuple — no node-level de-referencing (Section 4.3.1).
"""

from __future__ import annotations

from typing import Optional

from ..flexkeys import COMPOSE_SEP, FlexKey
from .table import AtomicItem, NodeItem, TableSchema, XatTuple, items_of, \
    single_item

#: Suffix marking constructed-node identifiers.
CONSTRUCTED_SUFFIX = "c"
#: The Combine "all" lineage token.
ALL_TOKEN = "*"


def lineage_token_of_item(item) -> str:
    """Lineage token of one item (constructed nodes contribute their body)."""
    if isinstance(item, NodeItem):
        value = item.key.value
        if item.is_constructed and value.endswith(CONSTRUCTED_SUFFIX):
            return value[:-len(CONSTRUCTED_SUFFIX)]
        return value
    if isinstance(item, AtomicItem):
        return item.value
    raise TypeError(f"unexpected item {item!r}")


def lineage_tokens(schema: TableSchema, tup: XatTuple, col: str
                   ) -> list[str]:
    """Resolve the Lineage Context of ``col`` for one tuple (Def 4.2.1)."""
    spec = schema.spec(col)
    if spec.is_all_lineage:
        return [ALL_TOKEN]
    if spec.is_self_lineage:
        return [lineage_token_of_item(item)
                for item in items_of(tup[col])]
    tokens: list[str] = []
    for ref_col, _cid in spec.lineage:
        tokens.extend(lineage_tokens(schema, tup, ref_col))
    return tokens


def order_tokens(schema: TableSchema, tup: XatTuple, col: str
                 ) -> Optional[list[str]]:
    """Resolve the Order Context of ``col`` for one tuple.

    Returns None when no order is defined (the paper's ``~`` prefix), an
    empty list when order equals lineage (no explicit prefix needed), and
    the token list otherwise.
    """
    spec = schema.spec(col)
    if spec.order is None:
        return None
    if spec.order == ():
        return []
    tokens = []
    for order_col in spec.order:
        item = single_item(tup[order_col])
        tokens.append(item.order_token() if item is not None else "")
    return tokens


def constructed_id(body_tokens: list[str]) -> FlexKey:
    """Semantic id FlexKey for a constructed node from lineage tokens."""
    body = COMPOSE_SEP.join(body_tokens) if body_tokens else ALL_TOKEN
    return FlexKey(body + CONSTRUCTED_SUFFIX)


def override_from_tokens(tokens: Optional[list[str]]) -> Optional[FlexKey]:
    """Overriding-order FlexKey composed from order tokens (None = none)."""
    if not tokens:
        return None
    return FlexKey(COMPOSE_SEP.join(tokens))
