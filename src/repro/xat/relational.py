"""Relational-like XAT operators (Section 2.2.2) with maintenance support.

The binary join family implements the bilinear delta expansion described in
:mod:`repro.xat.base`; Distinct and Group By sum count annotations (the
counting rules of Tables 6.1/6.2), which makes them linear in Z-semantics
and therefore directly evaluable over delta inputs.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..flexkeys import FlexKey, compose_values
from .base import DELTA, MODIFY, ExecutionContext, PlanError, XatOperator
from .conditions import Comparison, Condition, conjuncts, item_value
from .table import (AtomicItem, ContextSpec, NodeItem, TableSchema, XatTable,
                    XatTuple, items_of, single_item)


class TransientSideHandle:
    """Probe/scan access to a join side, built for one run.

    The store-backed twin (:class:`repro.engine.opstate.StoredSideHandle`)
    persists its table and index across runs; this one lives and dies with
    the run, which is exactly the old behaviour (the table itself is still
    served through ``evaluate_stable``, so a persistent store answers the
    table even when probing has to be transient).
    """

    def __init__(self, ctx: ExecutionContext, op: XatOperator, mode: str,
                 cols):
        self._ctx = ctx
        self._op = op
        self._mode = mode
        self.cols = cols
        self._table = None
        self._index = None

    def table(self) -> XatTable:
        if self._table is None:
            self._table = self._ctx.evaluate_stable(self._op, self._mode)
        return self._table

    def probe(self, key) -> list:
        if key is None:
            return []
        if self._index is None:
            self._index = {}
            for tup in self.table():
                for tup_key in _hash_keys(tup, self.cols, self._ctx):
                    self._index.setdefault(tup_key, []).append(tup)
        return self._index.get(key, [])


def side_handle(ctx: ExecutionContext, op: XatOperator, mode: str,
                cols) -> "TransientSideHandle":
    """A probe handle over a join side, persistent-store-backed when the
    run carries an operator-state store (falls back transparently)."""
    if ctx.store is not None and ctx.delta is not None and not ctx.bindings:
        handle = ctx.store.join_side(ctx, op, mode,
                                     tuple(cols) if cols else None)
        if handle is not None:
            return handle
    return TransientSideHandle(ctx, op, mode, cols)


class DiffSideHandle:
    """The *pre-batch* state of a join side under a modify batch.

    Insert/delete phases realize the old/new side state by mode (ANTI
    excludes the update roots); a modify batch changes no membership, so
    the old state is the current FULL table minus the side's own delta —
    the Z-semantics bag difference.  Negating the retract/assert pairs
    restores exactly the old rows: the negated retraction (+count, old
    values) is the row the old derivation joined on, the negated
    assertion (-count, new values) cancels the post-update row the FULL
    table already holds.
    """

    def __init__(self, base, delta_tuples: list, cols, ctx):
        self._base = base
        self._delta = delta_tuples
        self._ctx = ctx
        self.cols = cols
        self._index = None
        self._table = None
        # id(delta tuple) -> its one negated copy: consumers dedupe
        # probe results by tuple identity, so a row probed under several
        # keys of a multi-item cell must come back as the same object.
        self._negations: dict[int, XatTuple] = {}

    def _negated(self, tup: XatTuple) -> XatTuple:
        marker = id(tup)
        negated = self._negations.get(marker)
        if negated is None:
            negated = XatTuple(tup.cells, -tup.count, tup.refresh,
                               tup.touched, tup.era)
            self._negations[marker] = negated
        return negated

    def probe(self, key) -> list:
        if key is None:
            return []
        if self._index is None:
            self._index = {}
            for tup in self._delta:
                for tup_key in _hash_keys(tup, self.cols, self._ctx):
                    self._index.setdefault(tup_key, []).append(tup)
        matches = list(self._base.probe(key))
        matches.extend(self._negated(t) for t in self._index.get(key, ()))
        return matches

    def table(self) -> XatTable:
        if self._table is None:
            base = self._base.table()
            self._table = XatTable(base.schema,
                                   list(base.tuples)
                                   + [self._negated(t)
                                      for t in self._delta])
        return self._table


def old_side_handle(ctx: ExecutionContext, op: XatOperator, mode: str,
                    cols):
    """A handle realizing the pre-batch state of a join side.

    For insert/delete phases ``mode`` (``ctx.mode_for_old``) already
    does; under a modify batch the membership is unchanged and the old
    state is FULL minus the side's own count-carrying delta (the
    first-class retract/assert pairs).  Sides without such a delta —
    untouched documents, refresh-only modifies — fall through to the
    plain handle.
    """
    handle = side_handle(ctx, op, mode, cols)
    if (ctx.delta is not None and ctx.delta.phase == MODIFY
            and ctx.delta.document in op.source_documents()):
        delta = ctx.evaluate(op, DELTA)
        counted = [t for t in delta.tuples if t.count and not t.refresh]
        if counted:
            return DiffSideHandle(handle, counted, cols, ctx)
    return handle


class Select(XatOperator):
    """``sigma_c(T)``: filter tuples by a predicate (Category I / X)."""

    symbol = "sigma"

    def __init__(self, child: XatOperator, condition: Condition):
        super().__init__([child])
        self.condition = condition

    def _build_schema(self) -> TableSchema:
        return self.inputs[0].schema

    def execute(self, ctx: ExecutionContext) -> XatTable:
        source = ctx.evaluate(self.inputs[0])
        table = XatTable(self.schema)
        for tup in source:
            if self.condition.evaluate(tup, ctx):
                table.append(tup)
        return table

    def describe(self) -> str:
        return f"Select {self.condition}"


class Rename(XatOperator):
    """``rho_{col,col'}(T)``: column renaming (Category II of Table 4.1)."""

    symbol = "rho"
    anti_projectable = True

    def __init__(self, child: XatOperator, col: str, out: str):
        super().__init__([child])
        self.col = col
        self.out = out

    def _build_schema(self) -> TableSchema:
        base = self.inputs[0].schema
        columns = tuple(self.out if c == self.col else c
                        for c in base.columns)
        context = {}
        for c in base.columns:
            spec = base.spec(c)
            renamed_order = (None if spec.order is None else
                             tuple(self.out if oc == self.col else oc
                                   for oc in spec.order))
            renamed_lineage = tuple(
                (self.out if lc == self.col else lc, cid)
                for lc, cid in spec.lineage)
            context[self.out if c == self.col else c] = ContextSpec(
                renamed_order, renamed_lineage)
        order_schema = tuple(self.out if c == self.col else c
                             for c in base.order_schema)
        return TableSchema(columns, order_schema, context)

    def execute(self, ctx: ExecutionContext) -> XatTable:
        source = ctx.evaluate(self.inputs[0])
        table = XatTable(self.schema)
        for tup in source:
            cells = {(self.out if c == self.col else c): v
                     for c, v in tup.cells.items()}
            table.append(XatTuple(cells, tup.count, tup.refresh,
                                  tup.touched, tup.era))
        return table


class _BinaryJoinBase(XatOperator):
    """Shared machinery of Cartesian Product / Theta Join / Left Outer Join."""

    def __init__(self, left: XatOperator, right: XatOperator,
                 condition: Optional[Condition] = None):
        super().__init__([left, right])
        self.condition = condition

    def _build_schema(self) -> TableSchema:
        left, right = self.inputs[0].schema, self.inputs[1].schema
        overlap = set(left.columns) & set(right.columns)
        if overlap:
            raise PlanError(f"join inputs share columns {sorted(overlap)}")
        columns = left.columns + right.columns
        # Category III of Table 3.1: OS = OS(T1) + OS(T2).
        order_schema = left.order_schema + right.order_schema
        context = dict(left.context)
        context.update(right.context)
        # Category IX of Table 4.1: left columns get right's Table Order
        # Schema appended to their order context, and vice versa.
        for col in left.columns:
            spec = left.spec(col)
            if spec.order is not None and right.order_schema:
                base_order = spec.order if spec.order else (col,)
                context[col] = ContextSpec(base_order + right.order_schema,
                                           spec.lineage)
        for col in right.columns:
            spec = right.spec(col)
            if spec.order is not None and left.order_schema:
                base_order = spec.order if spec.order else (col,)
                context[col] = ContextSpec(left.order_schema + base_order,
                                           spec.lineage)
        return TableSchema(columns, order_schema, context)

    # -- join machinery -----------------------------------------------------------

    def _equi_key_columns(self) -> Optional[tuple[list[str], list[str]]]:
        """Columns for a hash join when every conjunct is a column equality."""
        if self.condition is None:
            return None
        left_cols = set(self.inputs[0].schema.columns)
        lefts, rights = [], []
        for comp in conjuncts(self.condition):
            if not isinstance(comp, Comparison) or comp.op != "=":
                return None
            cols = comp.columns()
            if len(cols) != 2:
                return None
            a, b = cols
            if a in left_cols and b not in left_cols:
                lefts.append(a)
                rights.append(b)
            elif b in left_cols and a not in left_cols:
                lefts.append(b)
                rights.append(a)
            else:
                return None
        return lefts, rights

    def _match_pairs(self, ctx: ExecutionContext, left: XatTable,
                     right: XatTable):
        """Yield (left_tuple, [matching right tuples])."""
        equi = self._equi_key_columns()
        if equi is not None:
            lcols, rcols = equi
            index: dict[tuple, list[XatTuple]] = {}
            for rt in right:
                for key in _hash_keys(rt, rcols, ctx):
                    index.setdefault(key, []).append(rt)
            for lt in left:
                yield lt, _probe_union(lambda key: index.get(key, ()),
                                       _hash_keys(lt, lcols, ctx))
        else:
            for lt in left:
                matches = []
                for rt in right:
                    merged = lt.merged(rt)
                    if (self.condition is None
                            or self.condition.evaluate(merged, ctx)):
                        matches.append(rt)
                yield lt, matches

    # -- maintenance expansion ------------------------------------------------------

    def execute(self, ctx: ExecutionContext) -> XatTable:
        if ctx.mode == DELTA and ctx.delta is not None:
            # The two-term expansion, delta side first: a term whose delta
            # is empty is skipped outright, so the untouched side of a
            # one-sided batch is never evaluated at all — and when it is
            # needed, it is probed (persistent index or transient build)
            # by the delta tuples instead of being iterated.
            doc = ctx.delta.document
            equi = self._equi_key_columns()
            lcols, rcols = equi if equi is not None else (None, None)
            table = XatTable(self.schema)
            if doc in self.inputs[0].source_documents():
                ldelta = ctx.evaluate(self.inputs[0], DELTA)
                if ldelta.tuples:
                    other = side_handle(ctx, self.inputs[1],
                                        ctx.mode_for_new, rcols)
                    self._combine_delta(table, ctx, ldelta, lcols, other,
                                        delta_side="left")
            if doc in self.inputs[1].source_documents():
                rdelta = ctx.evaluate(self.inputs[1], DELTA)
                if rdelta.tuples:
                    # A_old: under a modify batch the mode alone cannot
                    # realize the pre-update state — the diff handle
                    # subtracts the left side's own retract/assert pairs.
                    other = old_side_handle(ctx, self.inputs[0],
                                            ctx.mode_for_old, lcols)
                    self._combine_delta(table, ctx, rdelta, rcols, other,
                                        delta_side="right")
            return table
        table = XatTable(self.schema)
        self._combine_into(table, ctx,
                           ctx.evaluate(self.inputs[0]),
                           ctx.evaluate(self.inputs[1]),
                           delta_side=None)
        return table

    def _combine_into(self, table: XatTable, ctx: ExecutionContext,
                      left: XatTable, right: XatTable,
                      delta_side: Optional[str]) -> None:
        raise NotImplementedError

    def _delta_matches(self, ctx: ExecutionContext, dt: XatTuple,
                       delta_cols, other) -> list[XatTuple]:
        """Tuples of the non-delta side matching one delta tuple.

        Multi-item key cells probe once per distinct item value
        (existential semantics); a side tuple matching on several values
        still matches once.
        """
        if delta_cols is not None:
            return _probe_union(other.probe,
                                _hash_keys(dt, delta_cols, ctx))
        matches = []
        for ot in other.table():
            merged = dt.merged(ot)
            if self.condition is None or self.condition.evaluate(merged,
                                                                 ctx):
                matches.append(ot)
        return matches

    def _combine_delta(self, table: XatTable, ctx: ExecutionContext,
                       delta: XatTable, delta_cols, other,
                       delta_side: str) -> None:
        """Default (inner-join) delta term: iterate the delta tuples and
        probe the other side, emitting left-cells-first merges."""
        for dt in delta:
            for ot in self._delta_matches(ctx, dt, delta_cols, other):
                table.append(dt.merged(ot) if delta_side == "left"
                             else ot.merged(dt))


def _hash_keys(tup: XatTuple, cols: Sequence[str], ctx) -> list[tuple]:
    """Every equi-key a tuple hashes under (existential semantics).

    A single-item key cell contributes its one value; a multi-item cell
    contributes one key per *distinct* item value — the tuple is
    indexed/probed once per value it could match on, which realizes
    XPath's existential comparison for collection-valued keys (and is
    what lets maintenance retract pairs whose key cells change arity).
    An empty key cell hashes nowhere.
    """
    per_col: list[list[str]] = []
    for col in cols:
        items = items_of(tup[col])
        if not items:
            return []
        if len(items) == 1:
            per_col.append([item_value(items[0], ctx)])
            continue
        seen: set[str] = set()
        values: list[str] = []
        for item in items:
            value = item_value(item, ctx)
            if value not in seen:
                seen.add(value)
                values.append(value)
        per_col.append(values)
    keys: list[tuple] = [()]
    for values in per_col:
        keys = [key + (value,) for key in keys for value in values]
    return keys


def _probe_union(probe, keys: list) -> list:
    """Union of per-key probe results over a tuple's keys, deduplicated
    by tuple identity (a side tuple matching on several of a multi-item
    cell's values still matches once).  ``probe`` maps one key to its
    bucket — an index lookup or a side handle's probe.
    """
    if len(keys) == 1:
        return list(probe(keys[0]))
    seen: set[int] = set()
    matches: list = []
    for key in keys:
        for tup in probe(key):
            if id(tup) not in seen:
                seen.add(id(tup))
                matches.append(tup)
    return matches


class CartesianProduct(_BinaryJoinBase):
    """``x(T1, T2)``."""

    symbol = "x"
    anti_projectable = True

    def __init__(self, left: XatOperator, right: XatOperator):
        super().__init__(left, right, condition=None)

    def _combine_into(self, table, ctx, left, right, delta_side):
        for lt in left:
            for rt in right:
                table.append(lt.merged(rt))


class Join(_BinaryJoinBase):
    """Theta join ``|><|_c (T1, T2)``; hash-based for equality conditions."""

    symbol = "join"
    anti_projectable = True

    def _combine_into(self, table, ctx, left, right, delta_side):
        for lt, matches in self._match_pairs(ctx, left, right):
            for rt in matches:
                table.append(lt.merged(rt))

    def describe(self) -> str:
        return f"Join {self.condition}"


class LeftOuterJoin(_BinaryJoinBase):
    """``=|><|_c (T1, T2)`` with the dangling-tuple maintenance treatment
    of Chapter 7.4."""

    symbol = "loj"
    anti_projectable = False  # dangling tuples break coverage filtering

    def _handle_has_match(self, ctx, tup, cols, handle) -> bool:
        """Whether ``tup`` matches anything in a side handle's state.

        With negated diff rows in play (modify phase), matching is by
        *net count*: a row present only as a cancelled pair (+c and -c)
        is no match.
        """
        if cols is not None:
            return sum(ot.count
                       for ot in _probe_union(handle.probe,
                                              _hash_keys(tup, cols, ctx))
                       ) != 0
        total = 0
        for _lt, matches in self._match_pairs(ctx, _single_table(tup),
                                              handle.table()):
            total += sum(ot.count for ot in matches)
        return total != 0

    def _combine_delta(self, table, ctx, delta, delta_cols, other,
                       delta_side):
        equi = self._equi_key_columns()
        modify = ctx.delta.phase == "modify"
        if delta_side == "left":
            # Inner term over (ΔA, B_new) with LOJ null-padding.  Under a
            # modify batch every count-carrying ΔA row pads against the
            # *old* right state — δ·[dangling_old]; together with the
            # right-delta correction c_new·([dangling_new] -
            # [dangling_old]) this sums to the exact pad delta
            # c_new·[dangling_new] - c_old·[dangling_old] (a new row's
            # vacuous old-dangling pad cancels against its own
            # correction inside the group sum).
            rcols = equi[1] if equi is not None else None
            old_check = None
            for dt in delta:
                matches = self._delta_matches(ctx, dt, delta_cols, other)
                for ot in matches:
                    table.append(dt.merged(ot))
                if not modify or dt.refresh:
                    if not matches:
                        table.append(self._null_padded(dt, dt.count))
                    continue
                if old_check is None:
                    old_check = old_side_handle(
                        ctx, self.inputs[1], ctx.mode_for_old, rcols)
                if not self._handle_has_match(ctx, dt, delta_cols,
                                              old_check):
                    table.append(self._null_padded(dt, dt.count))
            return
        # Inner join of old-left with the delta, plus corrections that
        # retract (inserts) or restore (deletes) null-padded results for
        # left tuples whose dangling status flips (Fig 7.3).
        lcols = equi[0] if equi is not None else None
        matched_lefts: dict[int, XatTuple] = {}
        for dt in delta:
            for lt in self._delta_matches(ctx, dt, delta_cols, other):
                table.append(lt.merged(dt))
                matched_lefts.setdefault(id(lt), lt)
        if not matched_lefts:
            return
        rcols = equi[1] if equi is not None else None
        if modify:
            # A first-class modify can flip dangling status both ways:
            # compare each touched left row against the right side's old
            # (diffed) and new (current) states.
            if not ctx.delta.has_pairs:
                return  # refresh-only modify: no re-routing possible
            new_check = side_handle(ctx, self.inputs[1], ctx.mode_for_new,
                                    rcols)
            old_check = old_side_handle(ctx, self.inputs[1],
                                        ctx.mode_for_old, rcols)
            for lt in matched_lefts.values():
                if lt.era is not None:
                    continue  # synthetic diff row, not an extent left
                has_new = self._handle_has_match(ctx, lt, lcols, new_check)
                has_old = self._handle_has_match(ctx, lt, lcols, old_check)
                if has_old and not has_new:
                    table.append(self._null_padded(lt, lt.count))
                elif has_new and not has_old:
                    table.append(self._null_padded(lt, -lt.count))
            return
        check_mode = (ctx.mode_for_old if ctx.delta.phase == "insert"
                      else ctx.mode_for_new)
        check = side_handle(ctx, self.inputs[1], check_mode, rcols)
        for lt in matched_lefts.values():
            if lcols is not None:
                has = bool(_probe_union(check.probe,
                                        _hash_keys(lt, lcols, ctx)))
            else:
                has = self._has_match(ctx, lt, check.table())
            if has:
                continue
            if ctx.delta.phase == "insert":
                table.append(self._null_padded(lt, -lt.count))
            else:  # delete
                table.append(self._null_padded(lt, lt.count))

    def _null_padded(self, lt: XatTuple, count: int) -> XatTuple:
        cells = dict(lt.cells)
        for col in self.inputs[1].schema.columns:
            cells[col] = None
        return XatTuple(cells, count, lt.refresh, lt.touched, lt.era)

    def _combine_into(self, table, ctx, left, right, delta_side):
        if delta_side == "right":
            # Inner join of old-left with the delta, plus corrections that
            # retract (inserts) or restore (deletes) null-padded results for
            # left tuples whose dangling status flips (Fig 7.3).
            right_old = None
            right_new = None
            for lt, matches in self._match_pairs(ctx, left, right):
                for rt in matches:
                    table.append(lt.merged(rt))
                if not matches or ctx.delta.phase == "modify":
                    continue
                if ctx.delta.phase == "insert":
                    if right_old is None:
                        right_old = ctx.evaluate(self.inputs[1],
                                                 ctx.mode_for_old)
                    if not self._has_match(ctx, lt, right_old):
                        table.append(self._null_padded(lt, -lt.count))
                else:  # delete
                    if right_new is None:
                        right_new = ctx.evaluate(self.inputs[1],
                                                 ctx.mode_for_new)
                    if not self._has_match(ctx, lt, right_new):
                        table.append(self._null_padded(lt, lt.count))
            return
        # Normal evaluation, or delta on the left side: plain LOJ semantics.
        for lt, matches in self._match_pairs(ctx, left, right):
            if matches:
                for rt in matches:
                    table.append(lt.merged(rt))
            else:
                table.append(self._null_padded(lt, lt.count))

    def _has_match(self, ctx, lt: XatTuple, right: XatTable) -> bool:
        for _lt, matches in self._match_pairs(ctx, _single_table(lt), right):
            return bool(matches)
        return False

    def describe(self) -> str:
        return f"LeftOuterJoin {self.condition}"


def _single_table(tup: XatTuple) -> XatTable:
    table = XatTable(TableSchema(tuple(tup.cells)))
    table.append(tup)
    return table


def group_key(tup: XatTuple, cols: Sequence[str], ctx) -> tuple:
    """Value-based grouping key (node items group by identity)."""
    parts = []
    for col in cols:
        item = single_item(tup[col])
        if item is None:
            parts.append(None)
        elif isinstance(item, AtomicItem):
            parts.append(item.value)
        else:
            parts.append(item.key.value)
    return tuple(parts)


class Distinct(XatOperator):
    """``delta_col(T)``: distinct values with derivation counting.

    Output counts are the *sums* of the input duplicate counts — the
    counting rule that makes Distinct linear in Z-semantics (Chapter 6).
    The output table keeps only the distinct column (Category VIII).
    """

    symbol = "delta"

    def __init__(self, child: XatOperator, col: str):
        super().__init__([child])
        self.col = col

    def _build_schema(self) -> TableSchema:
        return TableSchema((self.col,), (),
                           {self.col: ContextSpec(order=None, lineage=())})

    def execute(self, ctx: ExecutionContext) -> XatTable:
        source = ctx.evaluate(self.inputs[0])
        table = XatTable(self.schema)
        groups: dict[tuple, XatTuple] = {}
        order: list[tuple] = []
        for tup in source:
            key = group_key(tup, (self.col,), ctx)
            existing = groups.get(key)
            if existing is None:
                fresh = XatTuple({self.col: tup[self.col]},
                                 tup.count, tup.refresh, era=tup.era)
                groups[key] = fresh
                order.append(key)
            else:
                existing.count += tup.count
                existing.refresh = existing.refresh or tup.refresh
                if existing.era != tup.era:
                    existing.era = None  # mixed pair halves: era unusable
        for key in order:
            tup = groups[key]
            if tup.count != 0 or tup.refresh:
                table.append(tup)
        return table

    # Persistent count state (Chapter 6): delta rows merge by *value*, so
    # a re-derivation of an existing distinct value adjusts its duplicate
    # count instead of appearing as a second tuple.

    def state_merge_key(self, tup: XatTuple, ctx) -> tuple:
        return ("distinct", group_key(tup, (self.col,), ctx))

    def state_apply(self, existing, dt, ctx):
        if dt.refresh:
            # Count-neutral content refresh of a value group: the cached
            # representative item stays valid (values are equal by key).
            return ("noop", None) if existing is not None else ("fail",
                                                                None)
        return super().state_apply(existing, dt, ctx)

    def describe(self) -> str:
        return f"Distinct({self.col})"


class OrderBy(XatOperator):
    """``tau_cols(T)``: sort and expose query order (Category V).

    Sort keys become the Order Schema; sorted cells get an explicit
    ``order_value`` (numeric values zero-padded) so that downstream
    overriding orders are *reproducible* across maintenance runs.
    """

    symbol = "tau"
    anti_projectable = True  # pure reorder; order lives in order_value

    def __init__(self, child: XatOperator, cols: Sequence[str]):
        super().__init__([child])
        self.cols = tuple(cols)

    def _build_schema(self) -> TableSchema:
        base = self.inputs[0].schema
        context = {}
        for col in base.columns:
            spec = base.spec(col)
            context[col] = ContextSpec(self.cols, spec.lineage)
        for col in self.cols:
            context[col] = ContextSpec((), base.spec(col).lineage)
        return TableSchema(base.columns, self.cols, context)

    @staticmethod
    def sortable(value: str) -> str:
        try:
            number = float(value)
        except (TypeError, ValueError):
            return value
        # Zero-pad so lexicographic order equals numeric order (>= 0 only;
        # negatives sort before via the sign prefix).
        if number < 0:
            return "-" + f"{1e18 + number:020.4f}"
        return f"{number:020.4f}"

    def execute(self, ctx: ExecutionContext) -> XatTable:
        source = ctx.evaluate(self.inputs[0])
        table = XatTable(self.schema)

        def key_fn(tup: XatTuple):
            parts = []
            for col in self.cols:
                item = single_item(tup[col])
                parts.append(self.sortable(item_value(item, ctx))
                             if item is not None else "")
            return tuple(parts)

        for tup in sorted(source.tuples, key=key_fn):
            cells = dict(tup.cells)
            for col in self.cols:
                item = single_item(tup[col])
                if isinstance(item, AtomicItem):
                    cells[col] = AtomicItem(
                        item.value, item.source_key, item.count,
                        item.refresh,
                        order_value=self.sortable(item.value))
                elif isinstance(item, NodeItem):
                    # Node-valued sort keys: override the key's order with
                    # the sortable form of the node's text value so that
                    # downstream overriding orders follow query order.
                    from ..flexkeys import FlexKey

                    token = self.sortable(item_value(item, ctx))
                    cells[col] = item.with_override(FlexKey(token))
            table.append(XatTuple(cells, tup.count, tup.refresh,
                                  tup.touched, tup.era))
        return table

    def describe(self) -> str:
        return f"OrderBy {', '.join(self.cols)}"
