"""Propagate phase: Incremental Maintenance Plans (Chapter 7)."""

from .imp import IncrementalMaintenancePlan, derive_imp

__all__ = ["IncrementalMaintenancePlan", "derive_imp"]
