"""Incremental Maintenance Plans (IMPs) as first-class objects (Chapter 7).

The paper's Propagate phase derives, from the view's algebra plan, an
*incremental maintenance plan in the same algebraic language*, executable
by the ordinary query engine.  In this implementation the IMP is the view
plan itself re-interpreted under a :class:`~repro.xat.DeltaSpec` — the
delta-mode execution rules attached to each operator realize the paper's
propagation equations:

=====================  ====================================================
operator               propagation rule (Z-semantics)
=====================  ====================================================
Navigate (unnest)      Δφ(T) = φ(ΔT) — navigation seeks the update roots;
                       the update sign multiplies in at the root crossing
Navigate (collection)  content change ⇒ tuple marked ``refresh``
Select                 Δσ(T) = σ(ΔT)
Join                   Δ(A ⋈ B) = ΔA ⋈ B_new  ∪  A_old ⋈ ΔB
Left Outer Join        as Join, plus retraction/restoration of null-padded
                       tuples whose dangling status flips (Section 7.4)
Distinct               Δδ(T) = δ_Z(ΔT) (duplicate counts summed)
Group By               Δγ(T) = γ_Z(ΔT) per touched group
Combine / Tagger /     linear: evaluated over the delta tuples; semantic
XML Union              ids make the fragments fusable (Chapter 4)
Merge                  linear per side (the other side's delta is empty)
Aggregate              per-member contribution deltas (Section 7.6)
=====================  ====================================================

:class:`IncrementalMaintenancePlan` packages a view plan + batch update
tree and produces the delta update trees the Apply phase consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..apply import ExtentNode
from ..engine import Engine
from ..storage import StorageManager
from ..xat import DELTA, DeltaSpec, Profiler, XatOperator
from ..xat.relational import _BinaryJoinBase


@dataclass
class IncrementalMaintenancePlan:
    """One derived IMP: the view plan under a specific batch update tree."""

    plan: XatOperator
    delta: DeltaSpec

    def execute(self, storage: StorageManager,
                profiler: Optional[Profiler] = None, *,
                engine: Optional[Engine] = None,
                store=None) -> list[ExtentNode]:
        """Run the IMP; returns the delta update trees (Chapter 7 output).

        Callers holding a long-lived :class:`Engine` (and an
        operator-state ``store``) pass them in so successive IMPs reuse
        persistent per-operator state instead of paying a cold start —
        a throwaway engine is only built for one-shot use.
        """
        if engine is None:
            engine = Engine(storage)
        return engine.result_forest(self.plan, mode=DELTA, delta=self.delta,
                                    profiler=profiler, store=store)

    def describe(self) -> str:
        """The IMP in algebraic form, with delta annotations per operator.

        Operators whose subtree touches the updated document are marked
        ``Δ``; binary operators over two touched sides show the two-term
        expansion they will evaluate.
        """
        doc = self.delta.document
        lines = [f"IMP for batch on {doc!r} "
                 f"({self.delta.phase}, {len(self.delta.roots)} roots):"]

        def visit(op: XatOperator, depth: int) -> None:
            touched = doc in op.source_documents()
            marker = "Δ " if touched else "  "
            note = ""
            if isinstance(op, _BinaryJoinBase):
                left = doc in op.inputs[0].source_documents()
                right = doc in op.inputs[1].source_documents()
                if left and right:
                    note = "   [ΔA ⋈ B_new  ∪  A_old ⋈ ΔB]"
                elif left:
                    note = "   [ΔA ⋈ B]"
                elif right:
                    note = "   [A ⋈ ΔB]"
            lines.append("  " * depth + marker + op.describe() + note)
            for child in op.inputs:
                visit(child, depth + 1)

        visit(self.plan, 0)
        return "\n".join(lines)


def derive_imp(plan: XatOperator, delta: DeltaSpec
               ) -> IncrementalMaintenancePlan:
    """Derive the incremental maintenance plan for one batch update tree.

    The batch must be homogeneous (one document, one update kind) — the
    Validate phase's :func:`repro.updates.batch_update_trees` produces
    exactly such batches.
    """
    if plan.schema is None:
        plan.prepare()
    if delta.document not in plan.source_documents():
        raise ValueError(
            f"document {delta.document!r} does not feed this view")
    return IncrementalMaintenancePlan(plan, delta)
